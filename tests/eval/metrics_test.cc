#include "src/eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetefedrec {
namespace {

TEST(MetricsTest, RecallCountsHitsOverRelevant) {
  std::unordered_set<ItemId> rel = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RecallAtK({1, 9, 2, 8}, rel), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK({5, 6, 7}, rel), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2, 3, 4}, rel), 1.0);
}

TEST(MetricsTest, RecallEmptyRelevantIsZero) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2}, {}), 0.0);
}

TEST(MetricsTest, NdcgPerfectRankingIsOne) {
  std::unordered_set<ItemId> rel = {3, 5};
  EXPECT_DOUBLE_EQ(NdcgAtK({3, 5, 1, 2}, rel), 1.0);
}

TEST(MetricsTest, NdcgPositionSensitive) {
  std::unordered_set<ItemId> rel = {7};
  double at_rank1 = NdcgAtK({7, 1, 2}, rel);
  double at_rank3 = NdcgAtK({1, 2, 7}, rel);
  EXPECT_DOUBLE_EQ(at_rank1, 1.0);
  // Hit at rank 3 (1-indexed): DCG = 1/log2(4) = 0.5; IDCG = 1.
  EXPECT_DOUBLE_EQ(at_rank3, 0.5);
  EXPECT_GT(at_rank1, at_rank3);
}

TEST(MetricsTest, NdcgHandComputedMixedCase) {
  std::unordered_set<ItemId> rel = {1, 2, 3};
  // Hits at ranks 1 and 3 of a K=3 list; |rel| = 3 -> ideal hits = 3.
  double dcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(4.0);
  double idcg =
      1.0 / std::log2(2.0) + 1.0 / std::log2(3.0) + 1.0 / std::log2(4.0);
  EXPECT_NEAR(NdcgAtK({1, 9, 2}, rel), dcg / idcg, 1e-12);
}

TEST(MetricsTest, NdcgIdealTruncatedAtK) {
  // More relevant items than list length: IDCG uses min(K, |rel|).
  std::unordered_set<ItemId> rel = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 2}, rel), 1.0);
}

TEST(ExtendedMetricsTest, HitRate) {
  std::unordered_set<ItemId> rel = {5};
  EXPECT_DOUBLE_EQ(HitRateAtK({1, 2, 5}, rel), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK({1, 2, 3}, rel), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtK({}, rel), 0.0);
}

TEST(ExtendedMetricsTest, Precision) {
  std::unordered_set<ItemId> rel = {1, 2};
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 3, 4}, rel), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK({3, 4}, rel), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, rel), 0.0);
}

TEST(ExtendedMetricsTest, MrrFirstHitPosition) {
  std::unordered_set<ItemId> rel = {9};
  EXPECT_DOUBLE_EQ(MrrAtK({9, 1, 2}, rel), 1.0);
  EXPECT_DOUBLE_EQ(MrrAtK({1, 9, 2}, rel), 0.5);
  EXPECT_DOUBLE_EQ(MrrAtK({1, 2, 9}, rel), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(MrrAtK({1, 2, 3}, rel), 0.0);
}

TEST(ExtendedMetricsTest, AveragePrecisionHandComputed) {
  std::unordered_set<ItemId> rel = {1, 3};
  // Hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecisionAtK({1, 5, 3}, rel), (1.0 + 2.0 / 3.0) / 2.0,
              1e-12);
  // Perfect ranking: AP = 1.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({1, 3}, rel), 1.0);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({5, 6}, rel), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({1}, {}), 0.0);
}

TEST(TopKTest, OrdersByScoreDescending) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  std::vector<bool> mask(4, false);
  auto top = TopKItems(scores, mask, 3);
  EXPECT_EQ(top, (std::vector<ItemId>{1, 3, 2}));
}

TEST(TopKTest, MaskExcludesTrainItems) {
  std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  std::vector<bool> mask = {true, false, true, false};
  auto top = TopKItems(scores, mask, 4);
  EXPECT_EQ(top, (std::vector<ItemId>{1, 3}));
}

TEST(TopKTest, KLargerThanCandidates) {
  std::vector<double> scores = {0.5, 0.6};
  std::vector<bool> mask = {false, false};
  EXPECT_EQ(TopKItems(scores, mask, 10).size(), 2u);
}

TEST(TopKTest, TieBreakByItemId) {
  std::vector<double> scores = {0.5, 0.5, 0.5};
  std::vector<bool> mask(3, false);
  EXPECT_EQ(TopKItems(scores, mask, 2), (std::vector<ItemId>{0, 1}));
}

}  // namespace
}  // namespace hetefedrec
