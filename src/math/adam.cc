#include "src/math/adam.h"

#include <cmath>

namespace hetefedrec {

namespace {

bool AllFinite(const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i])) return false;
  }
  return true;
}

}  // namespace

void Adam::Step(Matrix* param, const Matrix& grad) {
  HFR_CHECK(param->SameShape(grad));
  if (!AllFinite(grad.data().data(), grad.size())) {
    ++skipped_;
    return;
  }
  if (m_.empty()) {
    m_ = Matrix(param->rows(), param->cols());
    v_ = Matrix(param->rows(), param->cols());
  }
  HFR_CHECK(m_.SameShape(*param));
  ++t_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  double* p = param->data().data();
  double* m = m_.data().data();
  double* v = v_.data().data();
  const double* g = grad.data().data();
  const size_t n = param->size();
  for (size_t i = 0; i < n; ++i) {
    m[i] = b1 * m[i] + (1.0 - b1) * g[i];
    v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
    double mhat = m[i] / bias1;
    double vhat = v[i] / bias2;
    p[i] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
  }
}

void Adam::Reset() {
  m_ = Matrix();
  v_ = Matrix();
  t_ = 0;
  skipped_ = 0;
}

void SparseRowAdam::Reset(size_t num_rows, size_t width) {
  moments_.Reset(num_rows, 2 * width);
  t_ = 0;
  skipped_ = 0;
}

void SparseRowAdam::Step(RowOverlayTable* table, const SparseRowStore& grad) {
  const size_t w = table->cols();
  HFR_CHECK_EQ(grad.cols(), w);
  HFR_CHECK_EQ(grad.rows(), table->rows());
  HFR_CHECK_EQ(moments_.rows(), table->rows());
  HFR_CHECK_EQ(moments_.cols(), 2 * w);
  for (uint32_t r : grad.touched()) {
    if (!AllFinite(grad.RowOrNull(r), w)) {
      ++skipped_;
      return;
    }
  }
  ++t_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  // Enroll this step's gradient rows first so pointers into `moments_`
  // stay stable during the update sweep.
  for (uint32_t r : grad.touched()) moments_.EnsureRow(r);
  for (uint32_t r : moments_.touched()) {
    double* m = moments_.RowOrNull(r);
    double* v = m + w;
    const double* g = grad.RowOrNull(r);
    double* p = table->MutableRow(r);
    for (size_t d = 0; d < w; ++d) {
      const double gd = g != nullptr ? g[d] : 0.0;
      m[d] = b1 * m[d] + (1.0 - b1) * gd;
      v[d] = b2 * v[d] + (1.0 - b2) * gd * gd;
      const double mhat = m[d] / bias1;
      const double vhat = v[d] / bias2;
      p[d] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
    }
  }
}

}  // namespace hetefedrec
