#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "src/math/matrix.h"
#include "src/util/logging.h"

namespace hetefedrec {

namespace {

// Inverse CDF of the standard normal at 0.8 — used to fit the log-normal
// sigma from the published median and 80th percentile:
//   sigma = (ln p80 - ln median) / z80.
constexpr double kZ80 = 0.841621233572914;

SyntheticConfig Calibrated(const std::string& name, size_t users, size_t items,
                           double median, double p80, uint64_t seed,
                           double scale) {
  HFR_CHECK_GT(scale, 0.0);
  HFR_CHECK_LE(scale, 1.0);
  SyntheticConfig cfg;
  cfg.name = name;
  // Sub-linear down-scaling keeps the *regime*, not just the head-count:
  //   users   ∝ scale        (the population shrinks fastest),
  //   items   ∝ scale^0.6    (catalogues shrink slower than audiences — a
  //                           linearly shrunk catalogue would let the
  //                           data-rich minority saturate every item and
  //                           make isolated training look good),
  //   per-user interaction counts ∝ scale^0.3 (keeping paper-sized
  //                           histories over a shrunken catalogue would
  //                           have a median user covering a quarter of all
  //                           items, destroying the data-scarcity regime
  //                           of Fig. 1 that motivates the paper).
  // scale = 1 reproduces Table I exactly.
  cfg.num_users = std::max<size_t>(30, static_cast<size_t>(users * scale));
  cfg.num_items = std::max<size_t>(
      60, static_cast<size_t>(items * std::pow(scale, 0.6)));
  double count_scale = std::pow(scale, 0.3);
  cfg.lognormal_mu = std::log(median * count_scale);
  cfg.lognormal_sigma = (std::log(p80) - std::log(median)) / kZ80;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

SyntheticConfig MovieLensConfig(double scale) {
  // Table I: 6,040 users; 3,706 items; avg 165; median 77; p80 203.
  return Calibrated("ml", 6040, 3706, 77.0, 203.0, /*seed=*/101, scale);
}

SyntheticConfig AnimeConfig(double scale) {
  // Table I: 10,482 users; 6,888 items; avg 120; median 69; p80 150.
  return Calibrated("anime", 10482, 6888, 69.0, 150.0, /*seed=*/202, scale);
}

SyntheticConfig DoubanConfig(double scale) {
  // Table I: 1,833 users; 7,397 items; avg 180; median 115; p80 244.
  return Calibrated("douban", 1833, 7397, 115.0, 244.0, /*seed=*/303, scale);
}

StatusOr<SyntheticConfig> DatasetConfigByName(const std::string& name,
                                              double scale) {
  if (name == "ml" || name == "movielens") return MovieLensConfig(scale);
  if (name == "anime") return AnimeConfig(scale);
  if (name == "douban") return DoubanConfig(scale);
  return Status::InvalidArgument("unknown dataset '" + name +
                                 "' (expected ml|anime|douban)");
}

std::vector<Interaction> GenerateInteractions(const SyntheticConfig& config) {
  HFR_CHECK_GT(config.num_users, 0u);
  HFR_CHECK_GT(config.num_items, 0u);
  HFR_CHECK_GT(config.latent_dim, 0u);
  Rng root(config.seed);

  const size_t I = config.num_items;
  const size_t U = config.num_users;
  const size_t D = config.latent_dim;
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(D));

  // --- Item side: cluster centers, latent vectors, Zipf popularity. ---
  Rng item_rng = root.Fork(1);
  Matrix centers(config.num_clusters, D);
  for (double& v : centers.data()) v = item_rng.Normal();

  Matrix item_latent(I, D);
  std::vector<size_t> item_cluster(I);
  for (size_t j = 0; j < I; ++j) {
    size_t c = item_rng.UniformInt(config.num_clusters);
    item_cluster[j] = c;
    for (size_t d = 0; d < D; ++d) {
      item_latent(j, d) =
          centers(c, d) + config.item_noise * item_rng.Normal();
    }
  }

  // Random popularity ranks so popular items are spread across clusters.
  std::vector<size_t> rank(I);
  for (size_t j = 0; j < I; ++j) rank[j] = j;
  item_rng.Shuffle(&rank);
  std::vector<double> log_pop(I);
  for (size_t j = 0; j < I; ++j) {
    log_pop[j] =
        -config.zipf_exponent * std::log(static_cast<double>(rank[j] + 1));
  }

  // --- User side + interaction sampling. ---
  std::vector<Interaction> out;
  const size_t cap = std::max<size_t>(
      config.min_interactions,
      static_cast<size_t>(config.max_fraction_of_items *
                          static_cast<double>(I)));

  std::vector<double> user_vec(D);
  std::vector<std::pair<double, ItemId>> keys(I);
  for (size_t u = 0; u < U; ++u) {
    Rng rng = root.Fork(1000 + u);

    // Genre mix: one primary cluster, optionally blended with a second.
    size_t c1 = rng.UniformInt(config.num_clusters);
    size_t c2 = rng.UniformInt(config.num_clusters);
    double mix = rng.Bernoulli(0.5) ? rng.Uniform(0.0, 0.5) : 0.0;
    for (size_t d = 0; d < D; ++d) {
      user_vec[d] = (1.0 - mix) * centers(c1, d) + mix * centers(c2, d) +
                    config.user_noise * rng.Normal();
    }

    size_t count = static_cast<size_t>(
        rng.LogNormal(config.lognormal_mu, config.lognormal_sigma));
    count = std::clamp(count, config.min_interactions, cap);

    // Weighted sampling without replacement (Efraimidis–Spirakis): the
    // `count` largest keys log(uniform)/weight are an exact weighted draw.
    for (size_t j = 0; j < I; ++j) {
      double affinity =
          Dot(user_vec.data(), item_latent.Row(j), D) * inv_sqrt_d;
      double log_w = log_pop[j] + affinity / config.temperature;
      double w = std::exp(log_w);
      double log_u = std::log(1.0 - rng.Uniform());  // log of U(0,1], finite
      keys[j] = {log_u / w, static_cast<ItemId>(j)};
    }
    std::nth_element(keys.begin(), keys.begin() + count - 1, keys.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (size_t k = 0; k < count; ++k) {
      out.push_back(
          Interaction{static_cast<UserId>(u), keys[k].second});
    }
  }
  return out;
}

}  // namespace hetefedrec
