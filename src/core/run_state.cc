#include "src/core/run_state.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/core/checkpoint.h"

namespace hetefedrec {

namespace {

uint64_t Bits(double x) {
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

double Unbits(uint64_t b) {
  double x;
  std::memcpy(&x, &b, sizeof(x));
  return x;
}

void PackRng(const RngState& r, std::vector<uint64_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(r.s[i]);
  out->push_back(r.origin_seed);
  out->push_back(Bits(r.cached_normal));
  out->push_back(r.has_cached_normal ? 1 : 0);
}

constexpr size_t kRngWords = 7;

RngState UnpackRng(const uint64_t* w) {
  RngState r;
  for (int i = 0; i < 4; ++i) r.s[i] = w[i];
  r.origin_seed = w[4];
  r.cached_normal = Unbits(w[5]);
  r.has_cached_normal = w[6] != 0;
  return r;
}

// One EpochPoint = epoch + 2 doubles + 4 EvalResults x 3 words.
constexpr size_t kPointWords = 3 + 4 * 3;

void PackEval(const EvalResult& e, std::vector<uint64_t>* out) {
  out->push_back(Bits(e.recall));
  out->push_back(Bits(e.ndcg));
  out->push_back(e.users);
}

EvalResult UnpackEval(const uint64_t* w) {
  EvalResult e;
  e.recall = Unbits(w[0]);
  e.ndcg = Unbits(w[1]);
  e.users = static_cast<size_t>(w[2]);
  return e;
}

}  // namespace

uint64_t ConfigFingerprint(const ExperimentConfig& c,
                           const std::string& method_name) {
  // Every field that can change the trained bits or the accounting joins
  // the digest. Deliberately excluded: num_threads (thread-invariant by
  // construction), checkpoint_path/checkpoint_every/resume_run (IO
  // plumbing), debug_stop_after_rounds (the kill hook itself), and the
  // telemetry fields metrics_out/trace_out/profile/track_round_comm (pure
  // observation — a resumed run may toggle them freely).
  std::ostringstream s;
  s << method_name << '|' << c.dataset << '|' << c.data_scale << '|'
    << static_cast<int>(c.base_model) << '|' << c.dims[0] << ',' << c.dims[1]
    << ',' << c.dims[2] << '|' << c.ffn_hidden[0] << ',' << c.ffn_hidden[1]
    << '|' << c.embed_init_std << '|' << c.group_fractions[0] << ','
    << c.group_fractions[1] << ',' << c.group_fractions[2] << '|'
    << c.global_epochs << '|' << c.local_epochs << '|' << c.clients_per_round
    << '|' << c.lr << '|' << static_cast<int>(c.aggregation) << '|'
    << c.local_validation_fraction << '|' << c.unified_dual_task << '|'
    << c.decorrelation << '|' << c.ensemble_distillation << '|' << c.alpha
    << '|' << c.ddr_sample_rows << '|' << c.kd_items << '|' << c.kd_steps
    << '|' << c.kd_lr << '|' << c.use_sparse_updates << '|'
    << c.sparse_comm_accounting << '|' << c.use_batched_scoring << '|'
    << c.use_batched_topk << '|' << c.full_downloads << '|'
    << c.sync_replica_cap << '|' << c.availability << '|'
    << c.straggler_slack << '|' << c.round_deadline << '|' << c.net_bandwidth
    << '|' << c.net_bandwidth_sigma << '|' << c.net_latency << '|'
    << c.net_latency_sigma << '|' << c.net_compute_per_sample << '|'
    << c.wire_scalar_bytes << '|' << c.async_mode << '|'
    << c.async_staleness_alpha << '|' << c.async_max_staleness << '|'
    << c.async_distill_every << '|' << c.async_inflight << '|'
    << c.async_dispatch_batch << '|' << c.top_k << '|' << c.eval_every << '|'
    << c.eval_user_sample << '|' << c.eval_candidate_sample << '|' << c.seed
    << '|' << c.fault_upload_loss << '|' << c.fault_download_loss << '|'
    << c.fault_crash << '|' << c.fault_duplicate << '|' << c.fault_corrupt
    << '|' << c.fault_retry_max << '|' << c.fault_retry_base << '|'
    << c.fault_retry_cap << '|' << c.fault_quarantine_base << '|'
    << c.fault_quarantine_cap << '|' << c.fault_jitter << '|'
    << c.admission_control << '|' << c.admit_max_row_norm << '|'
    << c.admit_outlier_z << '|' << c.server_shards << '|'
    // fp32 and fp32_simd are results-identical by construction, so only
    // the float-vs-double choice joins the digest — a run may resume under
    // the other fp32 flavor (or after an AVX2 fallback) without drift.
    << (c.compute_backend != ComputeBackend::kFp64);
  const std::string text = s.str();
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char ch : text) {
    h ^= ch;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Status SaveRunState(const std::string& path, const RunState& state) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    HFR_RETURN_NOT_OK(WriteCheckpointHeader(&out));
    HFR_RETURN_NOT_OK(WriteMeta(&out, "kind", "run_state"));
    HFR_RETURN_NOT_OK(
        WriteMeta(&out, "format", std::to_string(kRunStateFormat)));
    HFR_RETURN_NOT_OK(WriteMeta(&out, "method", state.method));
    HFR_RETURN_NOT_OK(WriteMeta(&out, "base_model", state.base_model));

    const uint64_t num_slots = state.tables.size();
    const uint64_t num_clients = state.client_rngs.size();
    std::vector<uint64_t> scalars = {
        state.fingerprint,    state.next_epoch,
        state.mid_epoch,      state.round_budget,
        state.rounds_done,    state.dispatch_seq,
        Bits(state.loss_sum), state.loss_count,
        Bits(state.sim_clock), Bits(state.async_clock),
        state.async_next_seq, state.async_merged,
        state.async_dropped,  state.version_round,
        num_slots,            num_clients,
        state.has_replicas};
    HFR_RETURN_NOT_OK(WriteU64Vector(&out, scalars));

    std::vector<uint64_t> rngs;
    rngs.reserve(2 * kRngWords + num_clients * kRngWords);
    PackRng(state.sched_rng, &rngs);
    PackRng(state.kd_rng, &rngs);
    for (const RngState& r : state.client_rngs) PackRng(r, &rngs);
    HFR_RETURN_NOT_OK(WriteU64Vector(&out, rngs));

    std::vector<uint64_t> embeds;
    for (const Matrix& e : state.client_embeddings) {
      embeds.push_back(e.cols());
      for (double v : e.data()) embeds.push_back(Bits(v));
    }
    HFR_RETURN_NOT_OK(WriteU64Vector(&out, embeds));

    for (size_t s = 0; s < num_slots; ++s) {
      HFR_RETURN_NOT_OK(WriteMatrix(&out, state.tables[s]));
      HFR_RETURN_NOT_OK(WriteFfn(&out, state.thetas[s]));
    }
    HFR_RETURN_NOT_OK(WriteU64Vector(&out, state.version_floors));
    for (size_t s = 0; s < num_slots; ++s) {
      HFR_RETURN_NOT_OK(WriteU64Vector(&out, state.versions[s]));
    }
    HFR_RETURN_NOT_OK(WriteU64Vector(&out, state.queue_pending));
    HFR_RETURN_NOT_OK(WriteU64Vector(&out, state.comm_counters));
    HFR_RETURN_NOT_OK(WriteU64Vector(&out, state.gate_state));

    std::vector<uint64_t> admission;
    admission.push_back(state.admission_history.size());
    for (const std::vector<double>& window : state.admission_history) {
      admission.push_back(window.size());
      for (double n : window) admission.push_back(Bits(n));
    }
    HFR_RETURN_NOT_OK(WriteU64Vector(&out, admission));

    std::vector<uint64_t> hist;
    hist.reserve(state.history.size() * kPointWords);
    for (const EpochPoint& p : state.history) {
      hist.push_back(static_cast<uint64_t>(p.epoch));
      hist.push_back(Bits(p.mean_train_loss));
      hist.push_back(Bits(p.simulated_seconds));
      PackEval(p.eval.overall, &hist);
      for (const EvalResult& e : p.eval.per_group) PackEval(e, &hist);
    }
    HFR_RETURN_NOT_OK(WriteU64Vector(&out, hist));

    if (state.has_replicas) {
      std::vector<uint64_t> reps;
      for (const ReplicaSnapshot& r : state.replicas) {
        reps.push_back(r.slot_plus_one);
        reps.push_back(r.rows.size());
        for (size_t i = 0; i < r.rows.size(); ++i) {
          reps.push_back(r.rows[i]);
          reps.push_back(r.versions[i]);
        }
      }
      HFR_RETURN_NOT_OK(WriteU64Vector(&out, reps));
    }
    HFR_RETURN_NOT_OK(WriteEnd(&out));
    if (!out.good()) return Status::IOError("run-state write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

StatusOr<RunState> LoadRunState(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  HFR_RETURN_NOT_OK(ReadCheckpointHeader(&in));
  RunState state;
  for (const char* expected_key :
       {"kind", "format", "method", "base_model"}) {
    auto meta = ReadMeta(&in);
    if (!meta.ok()) return meta.status();
    if (meta->first != expected_key) {
      return Status::InvalidArgument("run state: expected meta key " +
                                     std::string(expected_key) + ", got " +
                                     meta->first);
    }
    if (meta->first == "kind" && meta->second != "run_state") {
      return Status::InvalidArgument("not a run-state checkpoint");
    }
    if (meta->first == "format" &&
        meta->second != std::to_string(kRunStateFormat)) {
      return Status::InvalidArgument("unsupported run-state format " +
                                     meta->second);
    }
    if (meta->first == "method") state.method = meta->second;
    if (meta->first == "base_model") state.base_model = meta->second;
  }

  auto scalars = ReadU64Vector(&in);
  if (!scalars.ok()) return scalars.status();
  if (scalars->size() != 17) {
    return Status::InvalidArgument("run state: bad scalar block");
  }
  const std::vector<uint64_t>& sc = *scalars;
  state.fingerprint = sc[0];
  state.next_epoch = sc[1];
  state.mid_epoch = sc[2];
  state.round_budget = sc[3];
  state.rounds_done = sc[4];
  state.dispatch_seq = sc[5];
  state.loss_sum = Unbits(sc[6]);
  state.loss_count = sc[7];
  state.sim_clock = Unbits(sc[8]);
  state.async_clock = Unbits(sc[9]);
  state.async_next_seq = sc[10];
  state.async_merged = sc[11];
  state.async_dropped = sc[12];
  state.version_round = sc[13];
  const uint64_t num_slots = sc[14];
  const uint64_t num_clients = sc[15];
  state.has_replicas = sc[16];
  if (num_slots == 0 || num_slots > 16) {
    return Status::InvalidArgument("run state: slot count implausible");
  }

  auto rngs = ReadU64Vector(&in);
  if (!rngs.ok()) return rngs.status();
  if (rngs->size() != (2 + num_clients) * kRngWords) {
    return Status::InvalidArgument("run state: bad RNG block");
  }
  state.sched_rng = UnpackRng(rngs->data());
  state.kd_rng = UnpackRng(rngs->data() + kRngWords);
  state.client_rngs.reserve(num_clients);
  for (uint64_t u = 0; u < num_clients; ++u) {
    state.client_rngs.push_back(
        UnpackRng(rngs->data() + (2 + u) * kRngWords));
  }

  auto embeds = ReadU64Vector(&in);
  if (!embeds.ok()) return embeds.status();
  {
    size_t i = 0;
    state.client_embeddings.reserve(num_clients);
    for (uint64_t u = 0; u < num_clients; ++u) {
      if (i >= embeds->size()) {
        return Status::InvalidArgument("run state: bad embedding block");
      }
      const uint64_t width = (*embeds)[i++];
      if (width > 4096 || i + width > embeds->size()) {
        return Status::InvalidArgument("run state: bad embedding block");
      }
      Matrix e(1, width);
      for (uint64_t d = 0; d < width; ++d) {
        e(0, d) = Unbits((*embeds)[i++]);
      }
      state.client_embeddings.push_back(std::move(e));
    }
    if (i != embeds->size()) {
      return Status::InvalidArgument("run state: bad embedding block");
    }
  }

  for (uint64_t s = 0; s < num_slots; ++s) {
    auto table = ReadMatrix(&in);
    if (!table.ok()) return table.status();
    auto theta = ReadFfn(&in);
    if (!theta.ok()) return theta.status();
    state.tables.push_back(std::move(table).value());
    state.thetas.push_back(std::move(theta).value());
  }

  auto floors = ReadU64Vector(&in);
  if (!floors.ok()) return floors.status();
  if (floors->size() != num_slots) {
    return Status::InvalidArgument("run state: bad version floors");
  }
  state.version_floors = std::move(floors).value();
  for (uint64_t s = 0; s < num_slots; ++s) {
    auto versions = ReadU64Vector(&in);
    if (!versions.ok()) return versions.status();
    state.versions.push_back(std::move(versions).value());
  }

  auto queue = ReadU64Vector(&in);
  if (!queue.ok()) return queue.status();
  state.queue_pending = std::move(queue).value();

  auto comm = ReadU64Vector(&in);
  if (!comm.ok()) return comm.status();
  state.comm_counters = std::move(comm).value();

  auto gate = ReadU64Vector(&in);
  if (!gate.ok()) return gate.status();
  state.gate_state = std::move(gate).value();

  auto admission = ReadU64Vector(&in);
  if (!admission.ok()) return admission.status();
  {
    const std::vector<uint64_t>& a = *admission;
    size_t i = 0;
    if (a.empty()) {
      return Status::InvalidArgument("run state: bad admission block");
    }
    const uint64_t windows = a[i++];
    for (uint64_t w = 0; w < windows; ++w) {
      if (i >= a.size()) {
        return Status::InvalidArgument("run state: bad admission block");
      }
      const uint64_t n = a[i++];
      if (i + n > a.size()) {
        return Status::InvalidArgument("run state: bad admission block");
      }
      std::vector<double> window(n);
      for (uint64_t k = 0; k < n; ++k) window[k] = Unbits(a[i++]);
      state.admission_history.push_back(std::move(window));
    }
  }

  auto hist = ReadU64Vector(&in);
  if (!hist.ok()) return hist.status();
  if (hist->size() % kPointWords != 0) {
    return Status::InvalidArgument("run state: bad history block");
  }
  for (size_t i = 0; i < hist->size(); i += kPointWords) {
    const uint64_t* w = hist->data() + i;
    EpochPoint p;
    p.epoch = static_cast<int>(w[0]);
    p.mean_train_loss = Unbits(w[1]);
    p.simulated_seconds = Unbits(w[2]);
    p.eval.overall = UnpackEval(w + 3);
    for (size_t g = 0; g < p.eval.per_group.size(); ++g) {
      p.eval.per_group[g] = UnpackEval(w + 6 + 3 * g);
    }
    state.history.push_back(p);
  }

  if (state.has_replicas) {
    auto reps = ReadU64Vector(&in);
    if (!reps.ok()) return reps.status();
    const std::vector<uint64_t>& r = *reps;
    size_t i = 0;
    for (uint64_t u = 0; u < num_clients; ++u) {
      if (i + 2 > r.size()) {
        return Status::InvalidArgument("run state: bad replica block");
      }
      ReplicaSnapshot snap;
      snap.slot_plus_one = r[i++];
      const uint64_t n = r[i++];
      if (i + 2 * n > r.size()) {
        return Status::InvalidArgument("run state: bad replica block");
      }
      snap.rows.reserve(n);
      snap.versions.reserve(n);
      for (uint64_t k = 0; k < n; ++k) {
        snap.rows.push_back(r[i++]);
        snap.versions.push_back(r[i++]);
      }
      state.replicas.push_back(std::move(snap));
    }
    if (i != r.size()) {
      return Status::InvalidArgument("run state: bad replica block");
    }
  }

  auto end = PeekTag(&in);
  if (!end.ok()) return end.status();
  if (*end != RecordTag::kEnd) {
    return Status::InvalidArgument("run state missing end sentinel");
  }
  return state;
}

}  // namespace hetefedrec
