// Fixture: every construct here must trip R1 (wall-clock).
#include <chrono>
#include <ctime>

double WallSeconds() {
  const auto t0 = std::chrono::steady_clock::now();      // finding
  const auto t1 = std::chrono::system_clock::now();      // finding
  const auto t2 = std::chrono::high_resolution_clock::now();  // finding
  (void)t0;
  (void)t1;
  (void)t2;
  return 0.0;
}

long EpochSeconds() { return time(nullptr); }  // finding

long CpuTicks() { return clock(); }  // finding

void PosixTime() {
  struct timespec ts;
  clock_gettime(0, &ts);  // finding
}
