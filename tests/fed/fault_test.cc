#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/fed/fault/admission.h"
#include "src/fed/fault/client_gate.h"
#include "src/fed/fault/fault_injector.h"

namespace hetefedrec {
namespace {

FaultOptions AllFaults(uint64_t seed) {
  FaultOptions o;
  o.upload_loss = 0.1;
  o.download_loss = 0.1;
  o.crash = 0.1;
  o.duplicate = 0.1;
  o.corrupt = 0.1;
  o.seed = seed;
  return o;
}

LocalUpdateResult SparseUpdate(size_t rows, size_t width, double value) {
  LocalUpdateResult u;
  u.sparse = true;
  u.v_delta_sparse.width = width;
  for (size_t r = 0; r < rows; ++r) {
    u.v_delta_sparse.rows.push_back(static_cast<uint32_t>(r));
    for (size_t d = 0; d < width; ++d) u.v_delta_sparse.data.push_back(value);
  }
  return u;
}

TEST(FaultInjectorTest, OffByDefault) {
  FaultInjector inj{FaultOptions{}};
  EXPECT_FALSE(inj.any());
  EXPECT_EQ(inj.Draw(3, 17), FaultKind::kNone);
}

TEST(FaultInjectorTest, DeterministicAndKeySensitive) {
  FaultInjector a{AllFaults(41)};
  FaultInjector b{AllFaults(41)};
  bool any_fault = false;
  bool key_matters = false;
  for (UserId u = 0; u < 64; ++u) {
    for (uint64_t key = 0; key < 32; ++key) {
      EXPECT_EQ(a.Draw(u, key), b.Draw(u, key));
      // Draw is const: repeated draws never advance hidden state.
      EXPECT_EQ(a.Draw(u, key), a.Draw(u, key));
      if (a.Draw(u, key) != FaultKind::kNone) any_fault = true;
      if (a.Draw(u, key) != a.Draw(u, key + 1)) key_matters = true;
    }
  }
  EXPECT_TRUE(any_fault);
  EXPECT_TRUE(key_matters);
}

TEST(FaultInjectorTest, SeedChangesDraws) {
  FaultInjector a{AllFaults(41)};
  FaultInjector b{AllFaults(42)};
  int diffs = 0;
  for (UserId u = 0; u < 64; ++u) {
    for (uint64_t key = 0; key < 8; ++key) {
      if (a.Draw(u, key) != b.Draw(u, key)) ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjectorTest, RatesPartitionTheDraw) {
  // With a 50% total fault rate, observed kind frequencies should land
  // near the configured 10% segments over a few thousand draws.
  FaultInjector inj{AllFaults(7)};
  int counts[6] = {0, 0, 0, 0, 0, 0};
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    counts[static_cast<int>(inj.Draw(i % 97, i / 97))]++;
  }
  for (FaultKind k : {FaultKind::kDownloadLoss, FaultKind::kCrash,
                      FaultKind::kUploadLoss, FaultKind::kDuplicate,
                      FaultKind::kCorrupt}) {
    const double frac =
        static_cast<double>(counts[static_cast<int>(k)]) / kDraws;
    EXPECT_NEAR(frac, 0.1, 0.02);
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.5, 0.03);
}

TEST(FaultInjectorTest, CorruptIsDeterministicAndBreaksTheUpdate) {
  FaultInjector inj{AllFaults(11)};
  bool saw_nonfinite = false;
  bool saw_large = false;
  for (uint64_t key = 0; key < 32; ++key) {
    LocalUpdateResult u1 = SparseUpdate(4, 8, 0.5);
    LocalUpdateResult u2 = SparseUpdate(4, 8, 0.5);
    const CorruptMode m1 = inj.Corrupt(5, key, &u1);
    const CorruptMode m2 = inj.Corrupt(5, key, &u2);
    EXPECT_EQ(m1, m2);
    ASSERT_EQ(u1.v_delta_sparse.data.size(), u2.v_delta_sparse.data.size());
    for (size_t i = 0; i < u1.v_delta_sparse.data.size(); ++i) {
      const double a = u1.v_delta_sparse.data[i];
      const double b = u2.v_delta_sparse.data[i];
      EXPECT_TRUE((std::isnan(a) && std::isnan(b)) || a == b);
    }
    if (m1 == CorruptMode::kNaN) {
      saw_nonfinite = true;
      EXPECT_TRUE(std::isnan(u1.v_delta_sparse.data[0]));
    } else if (m1 == CorruptMode::kInf) {
      saw_nonfinite = true;
      EXPECT_TRUE(std::isinf(u1.v_delta_sparse.data[0]));
    } else {
      saw_large = true;
      EXPECT_DOUBLE_EQ(u1.v_delta_sparse.data[0], 500.0);
    }
  }
  EXPECT_TRUE(saw_nonfinite);
  EXPECT_TRUE(saw_large);
}

TEST(FaultInjectorTest, CorruptDensePath) {
  FaultInjector inj{AllFaults(11)};
  LocalUpdateResult u;
  u.v_delta = Matrix(4, 8);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 8; ++c) u.v_delta(r, c) = 0.25;
  }
  inj.Corrupt(3, 0, &u);
  bool changed = false;
  for (size_t r = 0; r < 4 && !changed; ++r) {
    for (size_t c = 0; c < 8 && !changed; ++c) {
      changed = !(u.v_delta(r, c) == 0.25);
    }
  }
  EXPECT_TRUE(changed);
}

BackoffOptions FastBackoff() {
  BackoffOptions o;
  o.retry_base_seconds = 1.0;
  o.retry_cap_seconds = 8.0;
  o.quarantine_base_seconds = 10.0;
  o.quarantine_cap_seconds = 40.0;
  o.multiplier = 2.0;
  o.jitter = 0.0;  // exact delays for the growth assertions below
  o.retry_max = 4;
  o.seed = 5;
  return o;
}

TEST(ClientGateTest, StartsReady) {
  ClientGate gate(4, FastBackoff());
  for (UserId u = 0; u < 4; ++u) EXPECT_TRUE(gate.Ready(u, 0.0));
}

TEST(ClientGateTest, BackoffGrowsExponentiallyAndCaps) {
  ClientGate gate(2, FastBackoff());
  // fails=1 -> 1s, fails=2 -> 2s, fails=3 -> 4s (then retry_max hits).
  EXPECT_TRUE(gate.RetryAfterFailure(0, 100.0));
  EXPECT_FALSE(gate.Ready(0, 100.5));
  EXPECT_TRUE(gate.Ready(0, 101.0));
  EXPECT_TRUE(gate.RetryAfterFailure(0, 101.0));
  EXPECT_FALSE(gate.Ready(0, 102.5));
  EXPECT_TRUE(gate.Ready(0, 103.0));
  EXPECT_TRUE(gate.RetryAfterFailure(0, 103.0));
  EXPECT_TRUE(gate.Ready(0, 107.0));
  // Client 1 is untouched throughout.
  EXPECT_TRUE(gate.Ready(1, 100.0));
}

TEST(ClientGateTest, GivesUpAtRetryMaxAndResetsStreak) {
  ClientGate gate(1, FastBackoff());
  EXPECT_TRUE(gate.RetryAfterFailure(0, 0.0));
  EXPECT_TRUE(gate.RetryAfterFailure(0, 1.0));
  EXPECT_TRUE(gate.RetryAfterFailure(0, 3.0));
  // Fourth consecutive failure = retry_max: give up, immediately ready,
  // and the streak restarts from the base delay.
  EXPECT_FALSE(gate.RetryAfterFailure(0, 7.0));
  EXPECT_TRUE(gate.Ready(0, 7.0));
  EXPECT_TRUE(gate.RetryAfterFailure(0, 7.0));
  EXPECT_TRUE(gate.Ready(0, 8.0));
}

TEST(ClientGateTest, SuccessClearsTheStreak) {
  ClientGate gate(1, FastBackoff());
  EXPECT_TRUE(gate.RetryAfterFailure(0, 0.0));
  EXPECT_TRUE(gate.RetryAfterFailure(0, 1.0));
  gate.OnSuccess(0);
  // Next failure restarts at the base delay (1s), not 4s.
  EXPECT_TRUE(gate.RetryAfterFailure(0, 10.0));
  EXPECT_TRUE(gate.Ready(0, 11.0));
}

TEST(ClientGateTest, QuarantineUsesLongerScheduleAndNeverGivesUp) {
  ClientGate gate(1, FastBackoff());
  gate.Quarantine(0, 0.0);
  EXPECT_FALSE(gate.Ready(0, 9.0));
  EXPECT_TRUE(gate.Ready(0, 10.0));
  // Quarantines keep growing past retry_max without dropping the client.
  for (int i = 0; i < 6; ++i) gate.Quarantine(0, 100.0);
  EXPECT_FALSE(gate.Ready(0, 139.0));
  EXPECT_TRUE(gate.Ready(0, 140.0));  // capped at 40s
}

TEST(ClientGateTest, JitterIsDeterministic) {
  BackoffOptions o = FastBackoff();
  o.jitter = 0.5;
  ClientGate a(3, o), b(3, o);
  a.RetryAfterFailure(1, 5.0);
  b.RetryAfterFailure(1, 5.0);
  for (double t : {5.5, 6.0, 6.25, 6.5, 7.0}) {
    EXPECT_EQ(a.Ready(1, t), b.Ready(1, t));
  }
}

TEST(ClientGateTest, ExportRestoreRoundTrip) {
  BackoffOptions o = FastBackoff();
  o.jitter = 0.5;
  ClientGate a(4, o);
  a.RetryAfterFailure(0, 1.0);
  a.RetryAfterFailure(0, 3.0);
  a.Quarantine(2, 5.0);
  const std::vector<uint64_t> packed = a.Export();
  EXPECT_EQ(packed.size(), 4u * 3u);

  ClientGate b(4, o);
  b.Restore(packed);
  // Identical observable state *and* identical future draws (the cumulative
  // jitter counter round-trips).
  for (UserId u = 0; u < 4; ++u) {
    for (double t : {0.0, 2.0, 4.0, 8.0, 16.0}) {
      EXPECT_EQ(a.Ready(u, t), b.Ready(u, t));
    }
  }
  EXPECT_EQ(a.RetryAfterFailure(0, 20.0), b.RetryAfterFailure(0, 20.0));
  EXPECT_EQ(a.Export(), b.Export());
}

AdmissionOptions StrictAdmission() {
  AdmissionOptions o;
  o.max_row_norm = 1.0;
  o.outlier_z = 3.5;
  o.outlier_window = 32;
  o.outlier_min_history = 4;
  return o;
}

TEST(AdmissionTest, AcceptsCleanUpdate) {
  AdmissionController ctl(2, StrictAdmission());
  LocalUpdateResult u = SparseUpdate(2, 4, 0.1);
  const AdmissionDecision d = ctl.Admit(0, &u);
  EXPECT_EQ(d.verdict, AdmissionVerdict::kAccept);
  EXPECT_EQ(d.rows_clipped, 0u);
  EXPECT_NEAR(d.update_norm, std::sqrt(8 * 0.01), 1e-12);
}

TEST(AdmissionTest, RejectsNonFiniteAnywhere) {
  AdmissionController ctl(1, StrictAdmission());
  LocalUpdateResult u = SparseUpdate(2, 4, 0.1);
  u.v_delta_sparse.data[5] = std::nan("");
  EXPECT_EQ(ctl.Admit(0, &u).verdict, AdmissionVerdict::kRejectNonFinite);

  LocalUpdateResult v = SparseUpdate(2, 4, 0.1);
  v.theta_deltas.emplace_back(8, std::vector<size_t>{4, 4});
  v.theta_deltas[0].weight(0)(0, 0) =
      std::numeric_limits<double>::infinity();
  EXPECT_EQ(ctl.Admit(0, &v).verdict, AdmissionVerdict::kRejectNonFinite);
}

TEST(AdmissionTest, ClipsOversizedRowsInPlace) {
  AdmissionController ctl(1, StrictAdmission());
  LocalUpdateResult u = SparseUpdate(3, 4, 0.1);
  for (size_t d = 0; d < 4; ++d) u.v_delta_sparse.data[4 + d] = 10.0;  // row 1
  const AdmissionDecision dec = ctl.Admit(0, &u);
  EXPECT_EQ(dec.verdict, AdmissionVerdict::kAccept);
  EXPECT_EQ(dec.rows_clipped, 1u);
  double sq = 0.0;
  for (size_t d = 0; d < 4; ++d) {
    sq += u.v_delta_sparse.data[4 + d] * u.v_delta_sparse.data[4 + d];
  }
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-12);
  // Untouched rows stay bit-identical.
  EXPECT_DOUBLE_EQ(u.v_delta_sparse.data[0], 0.1);
}

TEST(AdmissionTest, OutlierGateRejectsOnlyAfterHistoryWarmsUp) {
  AdmissionOptions o = StrictAdmission();
  o.max_row_norm = 0.0;  // isolate the z-gate
  AdmissionController ctl(1, o);

  // Before min_history accepted norms exist, even a huge update passes.
  LocalUpdateResult big = SparseUpdate(2, 4, 50.0);
  EXPECT_EQ(ctl.Admit(0, &big).verdict, AdmissionVerdict::kAccept);

  AdmissionController warm(1, o);
  for (int i = 0; i < 8; ++i) {
    LocalUpdateResult u = SparseUpdate(2, 4, 0.1 + 0.01 * i);
    ASSERT_EQ(warm.Admit(0, &u).verdict, AdmissionVerdict::kAccept);
  }
  LocalUpdateResult outlier = SparseUpdate(2, 4, 50.0);
  EXPECT_EQ(warm.Admit(0, &outlier).verdict, AdmissionVerdict::kRejectOutlier);
  // Below-median updates are never outliers (one-sided gate).
  LocalUpdateResult tiny = SparseUpdate(2, 4, 1e-6);
  EXPECT_EQ(warm.Admit(0, &tiny).verdict, AdmissionVerdict::kAccept);
  // The rejection did not pollute the window: normal updates still pass.
  LocalUpdateResult normal = SparseUpdate(2, 4, 0.12);
  EXPECT_EQ(warm.Admit(0, &normal).verdict, AdmissionVerdict::kAccept);
}

TEST(AdmissionTest, SlotsHaveIndependentWindows) {
  AdmissionOptions o = StrictAdmission();
  o.max_row_norm = 0.0;
  AdmissionController ctl(2, o);
  for (int i = 0; i < 8; ++i) {
    LocalUpdateResult u = SparseUpdate(2, 4, 0.1);
    ASSERT_EQ(ctl.Admit(0, &u).verdict, AdmissionVerdict::kAccept);
  }
  // Slot 1 has no history, so the same huge norm is accepted there.
  LocalUpdateResult big0 = SparseUpdate(2, 4, 50.0);
  LocalUpdateResult big1 = SparseUpdate(2, 4, 50.0);
  EXPECT_EQ(ctl.Admit(0, &big0).verdict, AdmissionVerdict::kRejectOutlier);
  EXPECT_EQ(ctl.Admit(1, &big1).verdict, AdmissionVerdict::kAccept);
}

TEST(AdmissionTest, WindowIsBoundedAndRoundTrips) {
  AdmissionOptions o;
  o.outlier_z = 3.5;
  o.outlier_window = 8;
  o.outlier_min_history = 2;
  AdmissionController ctl(1, o);
  for (int i = 0; i < 20; ++i) {
    LocalUpdateResult u = SparseUpdate(1, 4, 0.1 + 0.001 * i);
    ctl.Admit(0, &u);
  }
  const auto history = ctl.ExportHistory();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].size(), 8u);  // trimmed to the window
  // Oldest-first: the last accepted norm is the window's back.
  EXPECT_NEAR(history[0].back(), 2.0 * (0.1 + 0.001 * 19), 1e-12);

  AdmissionController fresh(1, o);
  fresh.RestoreHistory(history);
  LocalUpdateResult probe_a = SparseUpdate(1, 4, 50.0);
  LocalUpdateResult probe_b = SparseUpdate(1, 4, 50.0);
  EXPECT_EQ(ctl.Admit(0, &probe_a).verdict, fresh.Admit(0, &probe_b).verdict);
}

}  // namespace
}  // namespace hetefedrec
