// Item-range-sharded parameter server (ServerApi implementation #2).
//
// The catalogue's row space [0, num_items) is split into S contiguous,
// near-equal ranges; shard s owns rows [lo_s, lo_{s+1}) with
// lo_s = floor(num_items * s / S). Each shard owns its slice of the round
// state — per-shard aggregate buffers, per-shard touched-row lists, and a
// per-shard `VersionedTable` (local row indexing) — while the canonical
// per-slot tables and Θ FFNs stay whole-catalogue (Θ aggregation and RESKD
// are cross-row operations; see docs/SYNC.md "Sharding").
//
// Merge-order contract: `FinishRound` visits shards in ascending shard id
// inside every (slot, width-segment) apply loop, and each shard replays its
// touched rows in upload order. Because the padded aggregation of Eq. 7-9
// is row-independent — accumulate is a per-row Axpy, apply is a per-row
// scaled add, and the segment/slot/Θ weights are global scalars — this
// schedule is *bit-identical* to the single-table `HeteroServer` for every
// shard count, not just S=1 (pinned by tests/core/sharding_equivalence_test
// and tests/fed/sharded_server_test).
//
// Round lockstep: BeginRound advances every shard's version table, so all
// shards always agree on the current round and on the per-slot StampAll
// floors (dense rounds stamp every shard in the same FinishRound). That
// invariant is what lets Snapshot() export one global `version_round` and
// per-slot floors while concatenating the raw per-row stamps by row range —
// the same shard-count-independent layout `HeteroServer` produces, making
// checkpoints portable across shard counts.
#ifndef HETEFEDREC_FED_SHARD_SHARDED_SERVER_H_
#define HETEFEDREC_FED_SHARD_SHARDED_SERVER_H_

#include <memory>
#include <vector>

#include "src/core/hetero_server.h"
#include "src/core/server_api.h"
#include "src/fed/sync/versioned_table.h"

namespace hetefedrec {

/// \brief ServerApi over S item-range shards.
class ShardedServer : public ServerApi {
 public:
  struct Options {
    /// Geometry/seed/aggregation options, shared with HeteroServer. The
    /// same seed produces bit-identical initial tables and Θ weights.
    HeteroServer::Options base;
    size_t num_shards = 1;
  };

  explicit ShardedServer(const Options& options);

  size_t num_slots() const override { return tables_.size(); }
  size_t width(size_t slot) const override { return tables_[slot].cols(); }
  size_t num_items() const override { return num_items_; }
  size_t SlotParamCount(size_t slot) const override;

  size_t num_shards() const override { return shards_.size(); }
  size_t shard_of_row(size_t row) const override;
  uint64_t shard_upload_scalars(size_t shard) const override {
    HFR_CHECK_LT(shard, shards_.size());
    return shards_[shard].upload_scalars;
  }
  /// First row of `shard`'s range (range end = start of shard + 1, or
  /// num_items for the last shard).
  size_t shard_row_begin(size_t shard) const {
    HFR_CHECK_LT(shard, shards_.size());
    return shards_[shard].lo;
  }
  size_t shard_row_count(size_t shard) const {
    HFR_CHECK_LT(shard, shards_.size());
    return shards_[shard].rows;
  }

  const Matrix& table(size_t slot) const override { return tables_[slot]; }
  const FeedForwardNet& theta(size_t slot) const override {
    return thetas_[slot];
  }
  const VersionView& versions() const override { return view_; }

  void BeginRound() override;
  void UploadDelta(const std::vector<LocalTaskSpec>& tasks,
                   const LocalUpdateResult& update,
                   double weight = 1.0) override;
  void FinishRound() override;
  void ApplyUpdate(const std::vector<LocalTaskSpec>& tasks,
                   const LocalUpdateResult& update, double scale) override;
  double Distill(const DistillationOptions& options, Rng* rng) override;
  void StampRows(size_t slot, const std::vector<uint32_t>& rows) override;

  void SetAdmission(AdmissionController* admission) override {
    admission_ = admission;
  }
  bool admission_enabled() const override { return admission_ != nullptr; }
  AdmissionDecision Admit(const std::vector<LocalTaskSpec>& tasks,
                          LocalUpdateResult* update) override;

  ServerSnapshot Snapshot() const override;
  void RestoreSnapshot(ServerSnapshot snapshot) override;

 private:
  /// Round/aggregation state owned by one item-range shard.
  struct Shard {
    size_t lo = 0;    // first global row of the range
    size_t rows = 0;  // range length
    /// Version stamps over the shard's rows, locally indexed.
    VersionedTable versions;
    /// Padded aggregate buffer (rows x widest), shared-aggregation mode.
    Matrix v_agg;
    /// Per-slot aggregate buffers (rows x width(slot)), clustered mode.
    std::vector<Matrix> v_agg_per_slot;
    /// Global row ids touched by this round's sparse uploads, in upload
    /// order (deduplicated through the server-wide touched mask).
    std::vector<uint32_t> touched;
    /// Lifetime item-delta scalars routed into this shard's rows.
    uint64_t upload_scalars = 0;
  };

  /// VersionView facade routing each row to its shard's table.
  class ShardedVersionView : public VersionView {
   public:
    explicit ShardedVersionView(const ShardedServer* server)
        : server_(server) {}
    uint64_t round() const override {
      return server_->shards_[0].versions.round();
    }
    uint64_t Version(size_t slot, size_t row) const override {
      const Shard& sh = server_->shards_[server_->shard_of_row(row)];
      return sh.versions.Version(slot, row - sh.lo);
    }

   private:
    const ShardedServer* server_;
  };

  size_t num_items_ = 0;
  AggregationMode aggregation_;
  bool shared_aggregation_;

  // Whole-catalogue canonical state (Θ and RESKD are cross-row).
  std::vector<Matrix> tables_;
  std::vector<FeedForwardNet> thetas_;

  std::vector<Shard> shards_;
  std::vector<size_t> shard_starts_;  // shards_[i].lo, for row routing
  ShardedVersionView view_;

  // Global round scalars — identical bookkeeping to HeteroServer.
  std::vector<double> segment_weight_;
  std::vector<double> slot_weight_;
  std::vector<FeedForwardNet> theta_agg_;
  std::vector<double> theta_weight_;
  bool round_open_ = false;
  bool round_has_dense_ = false;
  std::vector<uint8_t> touched_mask_;  // global row ids

  AdmissionController* admission_ = nullptr;  // not owned

  void MarkTouched(uint32_t row, Shard* shard);
};

/// Builds the server an experiment configured with `server_shards` shards
/// wants: the single-table `HeteroServer` when `server_shards == 0` (the
/// legacy default), otherwise a `ShardedServer` with that many shards
/// (S=1 included — useful for pinning the equivalence).
std::unique_ptr<ServerApi> MakeServer(const HeteroServer::Options& options,
                                      size_t server_shards);

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_SHARD_SHARDED_SERVER_H_
