// Asynchronous aggregation, end to end: determinism (seed and thread
// count), inertness of the async knobs while async_mode is off (guarding
// the default path's bit-identity to the synchronous implementation),
// losslessness under delta sync, the staleness-cap drop accounting, and
// the headline property — async reaches synchronous-quality metrics in
// fewer simulated seconds on a straggler-heavy network.
#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "tests/core/equivalence_test_util.h"

namespace hetefedrec {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 2;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 41;
  return cfg;
}

ExperimentConfig StragglerHeavyConfig() {
  ExperimentConfig cfg = SmallConfig();
  cfg.availability = 0.8;
  cfg.net_bandwidth_sigma = 1.0;
  cfg.net_latency_sigma = 0.3;
  cfg.net_compute_per_sample = 1e-4;
  return cfg;
}

ExperimentResult RunWith(const ExperimentConfig& cfg, Method method) {
  auto runner = ExperimentRunner::Create(cfg);
  EXPECT_TRUE(runner.ok()) << runner.status().ToString();
  return (*runner)->Run(method);
}

// With async_mode=false the async knobs must be completely inert — the
// default path is the synchronous protocol regardless of how they are
// set. This pins the "defaults bit-identical to the pre-async
// implementation" guarantee against accidental coupling.
TEST(AsyncEquivalence, KnobsAreInertWhenAsyncModeOff) {
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    for (Method method : kAllMethods) {
      ExperimentConfig plain = SmallConfig();
      plain.base_model = model;
      ExperimentConfig knobs = plain;
      knobs.async_mode = false;
      knobs.async_staleness_alpha = 2.0;
      knobs.async_max_staleness = 3;
      knobs.async_distill_every = 5;
      knobs.async_inflight = 7;
      knobs.async_dispatch_batch = 9;

      ExperimentResult a = RunWith(plain, method);
      ExperimentResult b = RunWith(knobs, method);
      SCOPED_TRACE(BaseModelName(model) + " / " + MethodName(method));
      ExpectSameEval(a.final_eval, b.final_eval);
      if (method != Method::kStandalone) {
        EXPECT_EQ(a.collapse_variance, b.collapse_variance);
        EXPECT_EQ(a.comm.TotalTransmitted(), b.comm.TotalTransmitted());
        EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
      }
    }
  }
}

// Async runs are a pure function of the seed: two identical runs agree
// bit-for-bit on metrics, comm totals and the virtual clock.
TEST(AsyncEquivalence, AsyncRunsReproduceBitForBit) {
  ExperimentConfig cfg = StragglerHeavyConfig();
  cfg.async_mode = true;
  ExperimentResult a = RunWith(cfg, Method::kHeteFedRec);
  ExperimentResult b = RunWith(cfg, Method::kHeteFedRec);
  ExpectSameEval(a.final_eval, b.final_eval);
  EXPECT_EQ(a.collapse_variance, b.collapse_variance);
  EXPECT_EQ(a.comm.TotalTransmitted(), b.comm.TotalTransmitted());
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_GT(a.simulated_seconds, 0.0);
}

// The satellite determinism bar: 1 thread vs 4 threads, bit-identical —
// with a dispatch batch > 1 so the parallel path genuinely executes, and
// across both base models.
TEST(AsyncEquivalence, AsyncIsThreadCountInvariant) {
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    ExperimentConfig cfg = StragglerHeavyConfig();
    cfg.async_mode = true;
    cfg.base_model = model;
    cfg.async_dispatch_batch = 8;
    ExperimentConfig cfg4 = cfg;
    cfg4.num_threads = 4;

    ExperimentResult serial = RunWith(cfg, Method::kHeteFedRec);
    ExperimentResult parallel = RunWith(cfg4, Method::kHeteFedRec);
    SCOPED_TRACE(BaseModelName(model));
    ExpectSameEval(serial.final_eval, parallel.final_eval);
    EXPECT_EQ(serial.collapse_variance, parallel.collapse_variance);
    EXPECT_EQ(serial.comm.TotalTransmitted(),
              parallel.comm.TotalTransmitted());
    EXPECT_EQ(serial.simulated_seconds, parallel.simulated_seconds);
  }
}

// Every method runs under the async schedule (the "round" machinery is
// gone: the event loop must cover homogeneous, clustered, exclusive and
// distillation wirings) and keeps producing uploads.
TEST(AsyncEquivalence, AllFederatedMethodsRunAsync) {
  for (Method method : kAllMethods) {
    if (method == Method::kStandalone) continue;  // no server to merge into
    ExperimentConfig cfg = SmallConfig();
    cfg.async_mode = true;
    ExperimentResult r = RunWith(cfg, method);
    SCOPED_TRACE(MethodName(method));
    size_t uploads = 0;
    for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
      uploads += r.comm.Participations(g);
    }
    EXPECT_GT(uploads, 0u);
    EXPECT_GT(r.simulated_seconds, 0.0);
  }
}

// Delta sync must stay lossless under merge-on-arrival: with replica
// verification on, every skipped row is CHECKed bit-identical to the live
// table (per-merge version advances included), so a missed stamp aborts
// the test. Unlike the synchronous case, metrics are *not* expected to
// match the full-download run bit-for-bit: the smaller downloads change
// completion times, and under merge-on-arrival the timeline is part of
// the protocol (stale weights, merge order). What must hold instead:
// the run is deterministic and its virtual clock only improves.
TEST(AsyncEquivalence, DeltaSyncIsLosslessUnderAsync) {
  ExperimentConfig full_cfg = StragglerHeavyConfig();
  full_cfg.async_mode = true;
  ExperimentConfig delta_cfg = full_cfg;
  delta_cfg.full_downloads = false;
  delta_cfg.sync_verify_replicas = true;

  ExperimentResult full_res = RunWith(full_cfg, Method::kHeteFedRec);
  ExperimentResult delta_res = RunWith(delta_cfg, Method::kHeteFedRec);
  ExperimentResult delta_res2 = RunWith(delta_cfg, Method::kHeteFedRec);
  // Deterministic (and the verify CHECKs passed to get here).
  ExpectSameEval(delta_res.final_eval, delta_res2.final_eval);
  EXPECT_EQ(delta_res.simulated_seconds, delta_res2.simulated_seconds);
  // Note: the *end-to-end* clock is not asserted against the full run —
  // per-participation downloads shrink, but the rescheduled timeline
  // (availability retries, merge order) need not end earlier globally.
  EXPECT_GT(full_res.simulated_seconds, 0.0);
  size_t uploads = 0;
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    uploads += delta_res.comm.Participations(g);
  }
  EXPECT_GT(uploads, 0u);
}

// The async_max_staleness drop policy: a cap far below the in-flight
// count forces drops, which must be counted per group in CommStats while
// the run stays deterministic and keeps merging fresh arrivals.
TEST(AsyncEquivalence, StalenessCapDropsAreCountedInCommStats) {
  ExperimentConfig cfg = StragglerHeavyConfig();
  cfg.async_mode = true;
  cfg.async_max_staleness = 4;  // in-flight is 32: the tail must drop
  ExperimentResult a = RunWith(cfg, Method::kHeteFedRec);
  ExperimentResult b = RunWith(cfg, Method::kHeteFedRec);

  EXPECT_GT(a.comm.TotalDropped(), 0u);
  size_t uploads = 0;
  size_t downloads = 0;
  size_t per_group_dropped = 0;
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    uploads += a.comm.Participations(g);
    downloads += a.comm.Downloads(g);
    per_group_dropped += a.comm.Dropped(g);
  }
  EXPECT_EQ(per_group_dropped, a.comm.TotalDropped());
  EXPECT_GT(uploads, 0u);
  // Dropped arrivals received their download but never merged an upload.
  EXPECT_GE(downloads, uploads + a.comm.TotalDropped());
  // Deterministic under the cap too.
  ExpectSameEval(a.final_eval, b.final_eval);
  EXPECT_EQ(a.comm.TotalDropped(), b.comm.TotalDropped());

  // Uncapped run: same protocol, nothing dropped.
  cfg.async_max_staleness = 0;
  EXPECT_EQ(RunWith(cfg, Method::kHeteFedRec).comm.TotalDropped(), 0u);
}

// The headline claim (quoted in docs/SYNC.md): on a straggler-heavy
// network, merge-on-arrival consumes far less simulated wall clock than
// the synchronous barrier for the same participation volume, without
// giving up ranking quality.
TEST(AsyncEquivalence, AsyncBeatsSyncSimulatedTimeOnStragglerHeavyNet) {
  // Small rounds so the epoch has a meaningful number of barriers: the
  // synchronous cost async removes is per-round, while async pays only
  // one drain per epoch (at toy scale a single huge round would hide the
  // difference behind the epoch tail).
  ExperimentConfig sync_cfg = StragglerHeavyConfig();
  sync_cfg.net_compute_per_sample = 0.0;
  sync_cfg.clients_per_round = 8;
  sync_cfg.straggler_slack = 2;  // sync gets its own straggler mitigation
  ExperimentConfig async_cfg = sync_cfg;
  async_cfg.straggler_slack = 0;
  async_cfg.async_mode = true;

  ExperimentResult sync_res = RunWith(sync_cfg, Method::kHeteFedRec);
  ExperimentResult async_res = RunWith(async_cfg, Method::kHeteFedRec);

  EXPECT_GT(sync_res.simulated_seconds, 0.0);
  EXPECT_GT(async_res.simulated_seconds, 0.0);
  // The barrier pays the straggler tail every round; merge-on-arrival
  // pays it once per epoch. 0.6x is a loose floor — measured ~0.5x here
  // and ~0.3x at bench scale (docs/SYNC.md).
  EXPECT_LT(async_res.simulated_seconds,
            0.6 * sync_res.simulated_seconds);
  // Quality stays in the same band (loose: metrics at this toy scale are
  // noisy, but async must not collapse).
  EXPECT_GT(async_res.final_eval.overall.ndcg,
            0.5 * sync_res.final_eval.overall.ndcg);
}

}  // namespace
}  // namespace hetefedrec
