// Central server: heterogeneous parameter storage and aggregation
// (Algorithm 1 server side; Eq. 7-9 for V, Eq. 15 for Θ).
//
// The server owns one (V, Θ) pair per model slot (small/medium/large — or a
// single slot for homogeneous baselines). Client deltas are accumulated
// into a padded buffer of the widest slot (Eq. 7-8), and at round end each
// slot applies the leading-column slice of the aggregate (Eq. 8-9). With
// identical leading-column initialization this preserves the invariant
// Vs = Vm[:, :Ns] = Vl[:, :Ns] (Eq. 10) until RESKD perturbs the tables
// independently. Clustered aggregation (per-slot accumulation, no padding)
// is also supported for the "Clustered FedRec" baseline.
#ifndef HETEFEDREC_CORE_HETERO_SERVER_H_
#define HETEFEDREC_CORE_HETERO_SERVER_H_

#include <vector>

#include "src/core/config.h"
#include "src/core/distillation.h"
#include "src/core/local_trainer.h"
#include "src/core/server_api.h"
#include "src/fed/fault/admission.h"
#include "src/fed/sync/versioned_table.h"
#include "src/models/ffn.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief Heterogeneous federated server state (single-table ServerApi).
class HeteroServer : public ServerApi {
 public:
  struct Options {
    /// Embedding width per slot, strictly ascending. One entry =
    /// homogeneous FedRec.
    std::vector<size_t> widths;
    std::array<size_t, 2> ffn_hidden = {8, 8};
    size_t num_items = 0;
    double embed_init_std = 0.1;
    /// Learning rate used when applying aggregated updates (Eq. 9; the
    /// uploaded quantities are local deltas, i.e. -lr·∇ already, so the
    /// server applies them with unit step).
    AggregationMode aggregation = AggregationMode::kMean;
    /// Padded cross-slot aggregation (HeteFedRec / Directly Aggregate) vs
    /// isolated per-slot aggregation (Clustered FedRec).
    bool shared_aggregation = true;
    uint64_t seed = 1;
  };

  explicit HeteroServer(const Options& options);

  size_t num_slots() const override { return tables_.size(); }
  size_t width(size_t slot) const override { return tables_[slot].cols(); }
  size_t num_items() const override { return versions_.num_rows(); }
  const Matrix& table(size_t slot) const override { return tables_[slot]; }
  Matrix& mutable_table(size_t slot) { return tables_[slot]; }
  const FeedForwardNet& theta(size_t slot) const override {
    return thetas_[slot];
  }
  FeedForwardNet& mutable_theta(size_t slot) { return thetas_[slot]; }

  /// Per-(slot, row) version stamps for the delta-sync protocol: a row's
  /// version is the round of the last FinishRound/Distill that changed it.
  /// Callers that mutate tables directly (mutable_table) must stamp the
  /// rows they touch to keep replicas sound.
  const VersionedTable& versions() const override { return versions_; }
  VersionedTable& mutable_versions() { return versions_; }

  /// One item-range shard covering the whole catalogue.
  size_t num_shards() const override { return 1; }
  size_t shard_of_row(size_t /*row*/) const override { return 0; }
  uint64_t shard_upload_scalars(size_t shard) const override {
    HFR_CHECK_EQ(shard, 0u);
    return upload_scalars_;
  }

  /// Clears the round accumulators. Call before the first Accumulate.
  /// Cost is proportional to the rows touched in the *previous* round
  /// (full-table only after a round that saw a dense update).
  void BeginRound() override;

  /// Adds one client's uploaded update. `tasks` describes which slot each
  /// theta delta belongs to and the width of v_delta (its last entry).
  /// `weight` scales the update's contribution (1.0 for kSum/kMean;
  /// the client's |Di| under kDataWeighted). Sparse updates are scattered
  /// row-by-row and enroll their rows in the round's touched set; dense
  /// and sparse updates may be mixed within a round. Not thread-safe —
  /// parallel rounds merge their results through ordered Accumulate calls.
  void Accumulate(const std::vector<LocalTaskSpec>& tasks,
                  const LocalUpdateResult& update, double weight = 1.0);

  /// ServerApi name for Accumulate.
  void UploadDelta(const std::vector<LocalTaskSpec>& tasks,
                   const LocalUpdateResult& update,
                   double weight = 1.0) override {
    Accumulate(tasks, update, weight);
  }

  /// Applies the aggregated updates to every slot (Eq. 9 / Eq. 15). When
  /// every update this round was sparse, only rows in the round's touched
  /// set are visited — rows outside it have an exactly-zero aggregate, so
  /// skipping them is bit-identical to the dense sweep.
  void FinishRound() override;

  /// Applies one client's update immediately, scaled by `scale` — the
  /// asynchronous merge-on-arrival primitive (docs/SYNC.md). Equivalent to
  /// a one-client round under kSum with weight = scale: the update lands
  /// verbatim times `scale` regardless of the configured aggregation mode
  /// (a mean over one update would cancel the staleness weight). Advances
  /// the version and stamps the touched rows like any round. Must not be
  /// called with a round open. Cost is proportional to the update's
  /// touched rows on the sparse path; a *dense* update pays a full
  /// accumulator zero + all-rows apply per merge (the synchronous schedule
  /// amortizes that sweep over a whole round), so async runs should keep
  /// use_sparse_updates on — the dense reference path is for equivalence
  /// checks, not throughput.
  void ApplyUpdate(const std::vector<LocalTaskSpec>& tasks,
                   const LocalUpdateResult& update, double scale) override;

  /// Runs RESKD across all slots' tables (Eq. 16-17). Returns the mean
  /// pre-distillation relation loss. No-op (returns 0) with one slot.
  double Distill(const DistillationOptions& options, Rng* rng) override;

  /// Marks `rows` of `slot` as changed at the current round.
  void StampRows(size_t slot, const std::vector<uint32_t>& rows) override {
    for (uint32_t r : rows) versions_.Stamp(slot, r);
  }

  /// Total public parameters of slot (V + Θ) — Table III accounting.
  size_t SlotParamCount(size_t slot) const override;

  /// Installs update admission control (docs/ROBUSTNESS.md). The server
  /// does not own the controller; callers run `Admit` on each upload
  /// before Accumulate/ApplyUpdate (in deterministic merge order — the
  /// gate's accepted-norm history is order-sensitive by design).
  void SetAdmission(AdmissionController* admission) override {
    admission_ = admission;
  }
  bool admission_enabled() const override { return admission_ != nullptr; }

  /// Runs the admission gates on one upload (`tasks.back().slot` selects
  /// the norm window; the item delta may be clipped in place). Requires an
  /// installed controller.
  AdmissionDecision Admit(const std::vector<LocalTaskSpec>& tasks,
                          LocalUpdateResult* update) override;

  /// Copies the full mutable state (tables, thetas, raw version stamps).
  ServerSnapshot Snapshot() const override;
  /// Restores a Snapshot with matching geometry (checked).
  void RestoreSnapshot(ServerSnapshot snapshot) override;

 private:
  std::vector<Matrix> tables_;
  std::vector<FeedForwardNet> thetas_;
  AggregationMode aggregation_;
  bool shared_aggregation_;
  VersionedTable versions_;

  // Round accumulators. Contributor totals are *weights*: 1 per client
  // under kSum/kMean, the client's data size under kDataWeighted.
  Matrix v_agg_;                        // widest-slot padded buffer (shared)
  std::vector<Matrix> v_agg_per_slot_;  // clustered mode
  /// Weight per width segment: segment s covers columns
  /// [widths[s-1], widths[s]); a client of width w contributes to all
  /// segments below w (shared mode).
  std::vector<double> segment_weight_;
  std::vector<double> slot_weight_;  // clustered mode
  std::vector<FeedForwardNet> theta_agg_;
  std::vector<double> theta_weight_;
  bool round_open_ = false;

  /// Item rows touched by this round's sparse updates (insertion order,
  /// deduplicated via `touched_mask_`). When `round_has_dense_` a dense
  /// update contributed and FinishRound/BeginRound fall back to full
  /// sweeps.
  std::vector<uint32_t> touched_rows_;
  std::vector<uint8_t> touched_mask_;
  bool round_has_dense_ = false;

  AdmissionController* admission_ = nullptr;  // not owned

  /// Lifetime item-embedding delta scalars received (shard accounting).
  uint64_t upload_scalars_ = 0;

  void MarkTouched(uint32_t row);
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_CORE_HETERO_SERVER_H_
