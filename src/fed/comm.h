// Communication accounting for Table III.
//
// The simulation never serializes bytes; instead every download/upload of
// public parameters is recorded as a scalar count, which is exactly the
// quantity Table III compares (size(V_a + Θ...) per client per round).
#ifndef HETEFEDREC_FED_COMM_H_
#define HETEFEDREC_FED_COMM_H_

#include <array>
#include <cstddef>

#include "src/fed/group.h"

namespace hetefedrec {

/// \brief Accumulates per-group transmission counts.
class CommStats {
 public:
  /// Records one client download of `params` scalars.
  void RecordDownload(Group g, size_t params);

  /// Records one client upload of `params` scalars.
  void RecordUpload(Group g, size_t params);

  /// Number of (download+upload) participations recorded for the group.
  size_t Participations(Group g) const;

  /// Mean scalars uploaded per participation for the group (0 if none).
  double AvgUpload(Group g) const;

  /// Mean scalars downloaded per participation for the group.
  double AvgDownload(Group g) const;

  /// Total scalars transmitted either direction across all groups.
  size_t TotalTransmitted() const;

  void Reset();

 private:
  struct PerGroup {
    size_t uploads = 0;
    size_t downloads = 0;
    size_t up_params = 0;
    size_t down_params = 0;
  };
  std::array<PerGroup, kNumGroups> groups_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_COMM_H_
