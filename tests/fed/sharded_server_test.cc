// ShardedServer unit contract: range geometry and row routing, the
// direct bit-identity against HeteroServer for sparse and dense uploads
// (any shard count, both aggregation layouts), lockstep version stamping
// through the routing view, per-shard upload accounting, StampRows, and
// the Snapshot/RestoreSnapshot round-trip including shard-count
// portability of a snapshot.
#include "src/fed/shard/sharded_server.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/hetero_server.h"

namespace hetefedrec {
namespace {

constexpr size_t kItems = 23;  // deliberately not divisible by 2/4/8

HeteroServer::Options BaseOptions(bool shared = true,
                                  AggregationMode mode =
                                      AggregationMode::kMean) {
  HeteroServer::Options opt;
  opt.widths = {2, 4, 8};
  opt.num_items = kItems;
  opt.embed_init_std = 0.1;
  opt.aggregation = mode;
  opt.shared_aggregation = shared;
  opt.seed = 3;
  return opt;
}

ShardedServer MakeSharded(size_t shards, bool shared = true,
                          AggregationMode mode = AggregationMode::kMean) {
  ShardedServer::Options opt;
  opt.base = BaseOptions(shared, mode);
  opt.num_shards = shards;
  return ShardedServer(opt);
}

std::vector<LocalTaskSpec> TasksUpTo(size_t group,
                                     const std::vector<size_t>& widths) {
  std::vector<LocalTaskSpec> tasks;
  for (size_t t = 0; t <= group; ++t) tasks.push_back({t, widths[t]});
  return tasks;
}

LocalUpdateResult DenseUpdate(size_t width, double v_value,
                              const std::vector<LocalTaskSpec>& tasks,
                              const ServerApi& server) {
  LocalUpdateResult r;
  r.v_delta = Matrix(kItems, width);
  r.v_delta.Fill(v_value);
  for (const auto& task : tasks) {
    r.theta_deltas.push_back(FeedForwardNet::ZerosLike(server.theta(task.slot)));
  }
  return r;
}

LocalUpdateResult SparseUpdate(size_t width,
                               const std::vector<uint32_t>& rows,
                               double v_value,
                               const std::vector<LocalTaskSpec>& tasks,
                               const ServerApi& server) {
  LocalUpdateResult r;
  r.sparse = true;
  r.v_delta_sparse.width = width;
  r.v_delta_sparse.rows = rows;
  r.v_delta_sparse.data.assign(rows.size() * width, v_value);
  for (const auto& task : tasks) {
    r.theta_deltas.push_back(FeedForwardNet::ZerosLike(server.theta(task.slot)));
  }
  return r;
}

void ExpectSameTables(const ServerApi& a, const ServerApi& b) {
  ASSERT_EQ(a.num_slots(), b.num_slots());
  for (size_t s = 0; s < a.num_slots(); ++s) {
    EXPECT_EQ(a.table(s).data(), b.table(s).data()) << "slot " << s;
  }
}

TEST(ShardedServerTest, RangesPartitionTheCatalogue) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ShardedServer server = MakeSharded(shards);
    SCOPED_TRACE("S=" + std::to_string(shards));
    EXPECT_EQ(server.num_shards(), shards);
    size_t covered = 0;
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(server.shard_row_begin(s), covered);
      EXPECT_GT(server.shard_row_count(s), 0u);
      covered += server.shard_row_count(s);
    }
    EXPECT_EQ(covered, kItems);
    // Every row routes into the shard whose range contains it.
    for (size_t row = 0; row < kItems; ++row) {
      const size_t s = server.shard_of_row(row);
      EXPECT_GE(row, server.shard_row_begin(s));
      EXPECT_LT(row, server.shard_row_begin(s) + server.shard_row_count(s));
    }
  }
}

TEST(ShardedServerTest, InitialStateMatchesHeteroServerBitForBit) {
  HeteroServer legacy(BaseOptions());
  for (size_t shards : {size_t{1}, size_t{3}, size_t{8}}) {
    ShardedServer server = MakeSharded(shards);
    SCOPED_TRACE("S=" + std::to_string(shards));
    ExpectSameTables(legacy, server);
    for (size_t s = 0; s < legacy.num_slots(); ++s) {
      // Same seed, same RNG draw order: Θ weights agree exactly too.
      ServerSnapshot a = legacy.Snapshot();
      ServerSnapshot b = server.Snapshot();
      EXPECT_EQ(a.thetas[s].ParamCount(), b.thetas[s].ParamCount());
    }
  }
}

// The core arithmetic contract, isolated from the trainer: a mixed round
// of sparse and dense uploads of every width lands bit-identically on the
// legacy server and on sharded servers of several counts — shared
// (padded) and clustered layouts, mean and sum modes.
TEST(ShardedServerTest, MixedRoundMatchesLegacyAnyShardCount) {
  for (bool shared : {true, false}) {
    for (AggregationMode mode :
         {AggregationMode::kMean, AggregationMode::kSum}) {
      HeteroServer legacy(BaseOptions(shared, mode));
      auto opt = BaseOptions(shared, mode);
      auto run_round = [&opt](ServerApi* server) {
        server->BeginRound();
        auto small = TasksUpTo(0, opt.widths);
        auto medium = TasksUpTo(1, opt.widths);
        auto large = TasksUpTo(2, opt.widths);
        server->UploadDelta(
            small, SparseUpdate(2, {0, 7, 22}, 1.25, small, *server));
        server->UploadDelta(
            large, SparseUpdate(8, {3, 7, 11, 19}, -0.5, large, *server));
        server->UploadDelta(medium,
                            DenseUpdate(4, 0.125, medium, *server), 2.0);
        server->UploadDelta(
            large, SparseUpdate(8, {0, 22}, 0.75, large, *server));
        server->FinishRound();
      };
      run_round(&legacy);
      for (size_t shards : {size_t{1}, size_t{2}, size_t{5}}) {
        ShardedServer server = MakeSharded(shards, shared, mode);
        run_round(&server);
        SCOPED_TRACE((shared ? "shared" : "clustered") +
                     std::string("/S=") + std::to_string(shards));
        ExpectSameTables(legacy, server);
      }
    }
  }
}

TEST(ShardedServerTest, VersionsAdvanceInLockstepAcrossShards) {
  ShardedServer server = MakeSharded(4);
  EXPECT_EQ(server.versions().round(), 0u);
  auto large = TasksUpTo(2, BaseOptions().widths);

  server.BeginRound();
  // Sparse round: only the touched rows (one per shard boundary region)
  // gain stamps.
  server.UploadDelta(large,
                     SparseUpdate(8, {0, 6, 12, 22}, 1.0, large, server));
  server.FinishRound();
  EXPECT_EQ(server.versions().round(), 1u);
  for (size_t slot = 0; slot < 3; ++slot) {
    EXPECT_EQ(server.versions().Version(slot, 0), 1u);
    EXPECT_EQ(server.versions().Version(slot, 22), 1u);
    EXPECT_EQ(server.versions().Version(slot, 1), 0u);  // untouched
  }

  server.BeginRound();
  // Dense round: every shard StampAlls the same round.
  server.UploadDelta(large, DenseUpdate(8, 0.5, large, server));
  server.FinishRound();
  EXPECT_EQ(server.versions().round(), 2u);
  for (size_t row = 0; row < kItems; ++row) {
    EXPECT_EQ(server.versions().Version(0, row), 2u) << "row " << row;
  }
}

TEST(ShardedServerTest, PerShardUploadScalarsRouteByRow) {
  ShardedServer server = MakeSharded(2);
  const size_t split = server.shard_row_begin(1);
  auto large = TasksUpTo(2, BaseOptions().widths);

  server.BeginRound();
  // Two rows in shard 0, one in shard 1.
  server.UploadDelta(
      large, SparseUpdate(
                 8, {0, static_cast<uint32_t>(split - 1),
                     static_cast<uint32_t>(split)},
                 1.0, large, server));
  server.FinishRound();

  EXPECT_EQ(server.shard_upload_scalars(0), 2u * 8u);
  EXPECT_EQ(server.shard_upload_scalars(1), 1u * 8u);
}

TEST(ShardedServerTest, StampRowsRoutesToOwningShards) {
  ShardedServer server = MakeSharded(4);
  auto large = TasksUpTo(2, BaseOptions().widths);
  server.BeginRound();
  server.UploadDelta(large, SparseUpdate(8, {1}, 0.1, large, server));
  server.FinishRound();  // round 1

  server.StampRows(0, {0, 11, 22});
  EXPECT_EQ(server.versions().Version(0, 0), 1u);
  EXPECT_EQ(server.versions().Version(0, 11), 1u);
  EXPECT_EQ(server.versions().Version(0, 22), 1u);
  EXPECT_EQ(server.versions().Version(0, 2), 0u);
  EXPECT_EQ(server.versions().Version(1, 11), 0u);  // other slots untouched
}

// Snapshot exports the single-table layout regardless of the shard count,
// so a snapshot written at S=4 restores into S=2 (and the legacy server's
// own snapshot restores into a sharded server).
TEST(ShardedServerTest, SnapshotRoundTripsAcrossShardCounts) {
  ShardedServer origin = MakeSharded(4);
  auto large = TasksUpTo(2, BaseOptions().widths);
  origin.BeginRound();
  origin.UploadDelta(large,
                     SparseUpdate(8, {2, 9, 17}, 0.625, large, origin));
  origin.FinishRound();
  ServerSnapshot snap = origin.Snapshot();
  EXPECT_EQ(snap.version_round, 1u);
  ASSERT_EQ(snap.tables.size(), 3u);
  ASSERT_EQ(snap.versions.size(), 3u);
  for (const auto& slot_versions : snap.versions) {
    EXPECT_EQ(slot_versions.size(), kItems);
  }

  ShardedServer other = MakeSharded(2);
  other.RestoreSnapshot(origin.Snapshot());
  ExpectSameTables(origin, other);
  EXPECT_EQ(other.versions().round(), 1u);
  for (size_t row = 0; row < kItems; ++row) {
    for (size_t slot = 0; slot < 3; ++slot) {
      EXPECT_EQ(other.versions().Version(slot, row),
                origin.versions().Version(slot, row));
    }
  }

  // And the restored server keeps aggregating identically to the origin.
  auto next_round = [&large](ServerApi* server) {
    server->BeginRound();
    server->UploadDelta(large,
                        SparseUpdate(8, {2, 20}, -0.25, large, *server));
    server->FinishRound();
  };
  next_round(&origin);
  next_round(&other);
  ExpectSameTables(origin, other);
}

TEST(ShardedServerTest, MakeServerSelectsImplementation) {
  auto legacy = MakeServer(BaseOptions(), 0);
  auto sharded = MakeServer(BaseOptions(), 4);
  EXPECT_EQ(legacy->num_shards(), 1u);
  EXPECT_NE(dynamic_cast<HeteroServer*>(legacy.get()), nullptr);
  EXPECT_EQ(sharded->num_shards(), 4u);
  EXPECT_NE(dynamic_cast<ShardedServer*>(sharded.get()), nullptr);
  ExpectSameTables(*legacy, *sharded);
}

}  // namespace
}  // namespace hetefedrec
