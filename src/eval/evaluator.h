// Top-K ranking evaluation over the full catalogue or a candidate slice.
//
// Protocol (§V-A/B): for each user, score every item the user has not
// trained on, take the top-20, and compute Recall@20 / NDCG@20 against the
// held-out 20% test interactions. Reported overall and per client group
// (Fig. 6 breaks NDCG down by Us/Um/Ul).
//
// Users are independent, so evaluation parallelizes over them: the
// ThreadPool overloads compute per-user metrics into per-index slots and
// reduce them serially in user order, making the result bit-identical for
// every thread count (asserted by tests/eval/evaluator_test.cc).
//
// Candidate-sliced evaluation (`candidate_sample > 0`) scores only each
// user's test items plus a seeded sample of never-interacted negative
// candidates (He et al.'s sampled-candidate protocol) instead of the whole
// catalogue — O(test + candidates) per user instead of O(items). It is off
// by default so the paper's full-ranking metrics are unchanged; when on,
// the candidate top-K equals the full top-K restricted to the candidate
// set (same ordering — pinned by tests/eval/evaluator_test.cc).
//
// Top-K selection runs through `TopKSelector` (src/eval/topk.h): a
// streaming bounded heap over the score blocks (full catalogue; fused
// with scoring via the StreamScoreFn overload) or a bucketed threshold
// cascade (candidate slice), both bit-identical to the partial_sort
// reference kept behind `use_batched_topk = false`. Per-user state lives
// in per-thread SlotScratch, so evaluation allocates nothing per user.
#ifndef HETEFEDREC_EVAL_EVALUATOR_H_
#define HETEFEDREC_EVAL_EVALUATOR_H_

#include <array>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/data/dataset.h"
#include "src/eval/topk.h"
#include "src/fed/group.h"
#include "src/fed/groups.h"
#include "src/util/rng.h"

namespace hetefedrec {

class ThreadPool;

/// \brief Mean metrics over a set of users.
struct EvalResult {
  double recall = 0.0;
  double ndcg = 0.0;
  size_t users = 0;  // users contributing (non-empty test set)
};

/// \brief Overall + per-group evaluation.
struct GroupedEval {
  EvalResult overall;
  std::array<EvalResult, kNumGroups> per_group;

  const EvalResult& group(Group g) const {
    return per_group[static_cast<int>(g)];
  }
};

/// \brief Runs the ranking protocol against a scoring callback.
class Evaluator {
 public:
  /// Scores all items for a user: fills `scores` (resized to num_items).
  using ScoreFn =
      std::function<void(UserId user, std::vector<double>* scores)>;

  /// Like ScoreFn, with the executing thread's slot (< pool->num_slots(),
  /// or 0 when serial) so callers can keep per-thread scorer scratch. Must
  /// be safe to invoke concurrently for distinct users on distinct slots.
  using ThreadedScoreFn = std::function<void(
      UserId user, size_t thread_slot, std::vector<double>* scores)>;

  /// Scores an explicit item-id list for a user: writes ids.size() logits
  /// into `out`, out[i] scoring ids[i]. The evaluator passes the full
  /// catalogue span in full mode and the user's candidate slice in
  /// candidate mode, so one callback (typically Scorer::ScoreBatch) serves
  /// both. Same concurrency contract as ThreadedScoreFn.
  using BatchScoreFn = std::function<void(
      UserId user, size_t thread_slot, const std::vector<ItemId>& ids,
      double* out)>;

  /// Streams one user's catalogue scores into a top-K sink instead of
  /// filling a score array: the callback calls `sink->Push(first, scores,
  /// n)` once per score block (contiguous spans covering [0, num_items),
  /// each item exactly once; train items are masked by the sink). This is
  /// the fused scoring+selection path — no O(items) score array or
  /// candidate vector is ever materialized. Full-catalogue mode only.
  /// Same concurrency contract as ThreadedScoreFn.
  using StreamScoreFn = std::function<void(UserId user, size_t thread_slot,
                                           TopKSelector* sink)>;

  /// \param ds dataset (test sets + train masks).
  /// \param assignment client group division (for the per-group breakdown).
  /// \param top_k recommendation list length (paper: 20).
  /// \param user_sample evaluate only this many users (0 = all); users are
  ///   drawn deterministically from `seed` so curves are comparable across
  ///   epochs and methods.
  /// \param candidate_sample negative candidates per user for
  ///   candidate-sliced evaluation; 0 = rank the full catalogue. Candidate
  ///   draws are seeded per user, independent of thread count.
  /// \param use_batched_topk select top-K via TopKSelector's streaming
  ///   heap / bucketed cascade (default) instead of the partial_sort
  ///   reference. Bit-identical either way (see src/eval/topk.h); false
  ///   keeps the reference for equivalence tests and benchmarks.
  Evaluator(const Dataset& ds, const GroupAssignment& assignment,
            size_t top_k = 20, size_t user_sample = 0, uint64_t seed = 9177,
            size_t candidate_sample = 0, bool use_batched_topk = true);

  /// Evaluates `score_fn` over the (sampled) user population, serially.
  /// Full-catalogue mode only (ignores candidate_sample).
  GroupedEval Evaluate(const ScoreFn& score_fn) const;

  /// Parallel evaluation over users. `pool` may be null (serial). Result is
  /// bit-identical to the serial overload for any thread count.
  /// Full-catalogue mode only (ignores candidate_sample).
  GroupedEval Evaluate(const ThreadedScoreFn& score_fn,
                       ThreadPool* pool) const;

  /// Parallel evaluation through the id-list callback: full-catalogue
  /// ranking when candidate_sample is 0 (bit-identical to the
  /// ThreadedScoreFn overload given the same per-item scores), the
  /// candidate slice otherwise.
  GroupedEval Evaluate(const BatchScoreFn& score_fn, ThreadPool* pool) const;

  /// Fused evaluation through the streaming callback: scoring and top-K
  /// selection interleave per block, so per-user cost is O(items) score
  /// compares with no O(items) buffer, sort, or memset. Full-catalogue
  /// mode only (CHECKs candidate_sample == 0); bit-identical to the other
  /// overloads given the same per-item scores.
  GroupedEval Evaluate(const StreamScoreFn& score_fn, ThreadPool* pool) const;

  /// The candidate id list for `u`: test items plus `candidate_sample`
  /// seeded never-interacted negatives, ascending and duplicate-free.
  /// Exposed for the candidate-vs-full pinning test.
  std::vector<ItemId> CandidateItems(UserId u) const;

  const std::vector<UserId>& eval_users() const { return users_; }
  size_t candidate_sample() const { return candidate_sample_; }
  bool use_batched_topk() const { return use_batched_topk_; }

 private:
  /// Per-thread evaluation scratch: every per-user buffer an Evaluate call
  /// reuses, so steady-state evaluation allocates nothing per user.
  struct SlotScratch {
    TopKSelector selector;
    std::vector<double> scores;
    std::vector<bool> masked;  // all-false between users (set/use/clear)
    std::vector<ItemId> topk;
    // hfr-lint: iteration-order-safe(membership tests only - metrics walk the ordered topk vector and probe this set via count)
    std::unordered_set<ItemId> relevant;
  };

  template <typename PerUserFn>
  GroupedEval Reduce(const PerUserFn& eval_user, ThreadPool* pool) const;

  /// Fills scratch->relevant from the user's test items and sets the
  /// user's train-item mask bits. Paired with FinishUser.
  void BeginUser(UserId u, SlotScratch* scratch) const;
  /// Computes recall/ndcg from scratch->topk and clears the train-item
  /// bits again — only the previously set bits, not an O(items) refill.
  void FinishUser(UserId u, SlotScratch* scratch, double* recall,
                  double* ndcg) const;
  /// Top-K over a filled score array via the selector (heap) or the
  /// partial_sort reference, per use_batched_topk_.
  void SelectMasked(SlotScratch* scratch) const;

  const Dataset& ds_;
  const GroupAssignment& assignment_;
  size_t top_k_;
  size_t candidate_sample_;
  bool use_batched_topk_;
  Rng candidate_root_;  // forked per user for candidate draws
  std::vector<UserId> users_;
  std::vector<ItemId> all_items_;  // iota span for full-mode BatchScoreFn
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_EVAL_EVALUATOR_H_
