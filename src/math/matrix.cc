#include "src/math/matrix.h"

#include <algorithm>
#include <cmath>

namespace hetefedrec {

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  HFR_CHECK(SameShape(other));
  const double* src = other.data_.data();
  double* dst = data_.data();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += scale * src[i];
}

void Matrix::AddScaledIntoLeadingCols(const Matrix& other, double scale) {
  HFR_CHECK_EQ(rows_, other.rows_);
  HFR_CHECK_LE(other.cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = other.Row(r);
    double* dst = Row(r);
    for (size_t c = 0; c < other.cols_; ++c) dst[c] += scale * src[c];
  }
}

void Matrix::Scale(double scale) {
  for (double& v : data_) v *= scale;
}

Matrix Matrix::LeadingCols(size_t n_cols) const {
  HFR_CHECK_LE(n_cols, cols_);
  Matrix out(rows_, n_cols);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = Row(r);
    double* dst = out.Row(r);
    std::copy(src, src + n_cols, dst);
  }
  return out;
}

Matrix Matrix::RowSlice(size_t row0, size_t n_rows) const {
  HFR_CHECK_LE(row0 + n_rows, rows_);
  Matrix out(n_rows, cols_);
  std::copy(data_.begin() + row0 * cols_,
            data_.begin() + (row0 + n_rows) * cols_, out.data_.begin());
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& a, const Matrix& b) {
  HFR_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.Row(k);
      double* orow = out.Row(i);
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Dot(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double Norm2(const double* a, size_t n) { return std::sqrt(Dot(a, a, n)); }

double CosineSimilarity(const double* a, const double* b, size_t n) {
  double na = Norm2(a, n);
  double nb = Norm2(b, n);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b, n) / (na * nb);
}

}  // namespace hetefedrec
