#include "src/fed/groups.h"

#include <gtest/gtest.h>

namespace hetefedrec {
namespace {

// 10 users whose interaction counts are 1..10 (user id == count-1 order).
Dataset LadderDataset() {
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 10; ++u) {
    for (ItemId i = 0; i <= u; ++i) xs.push_back({u, i});
  }
  return Dataset::FromInteractions(xs, 10, 16).value();
}

TEST(GroupsTest, FiveThreeTwoDivision) {
  Dataset ds = LadderDataset();
  auto a = AssignGroups(ds, {5, 3, 2});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(Group::kSmall), 5u);
  EXPECT_EQ(a->size(Group::kMedium), 3u);
  EXPECT_EQ(a->size(Group::kLarge), 2u);
  // Users with the fewest interactions are small.
  for (UserId u = 0; u < 5; ++u) EXPECT_EQ(a->of(u), Group::kSmall);
  for (UserId u = 5; u < 8; ++u) EXPECT_EQ(a->of(u), Group::kMedium);
  for (UserId u = 8; u < 10; ++u) EXPECT_EQ(a->of(u), Group::kLarge);
}

TEST(GroupsTest, ThresholdsMatchBoundaryCounts) {
  Dataset ds = LadderDataset();
  auto a = AssignGroups(ds, {5, 3, 2});
  ASSERT_TRUE(a.ok());
  // Boundary users are u=4 (5 interactions) and u=7 (8 interactions) —
  // the "<50%" and "<80%" columns of Table I.
  EXPECT_DOUBLE_EQ(a->thresholds[0], 5.0);
  EXPECT_DOUBLE_EQ(a->thresholds[1], 8.0);
}

TEST(GroupsTest, EvenDivision) {
  Dataset ds = LadderDataset();
  auto a = AssignGroups(ds, {1, 1, 1});
  ASSERT_TRUE(a.ok());
  // 10 users in 1:1:1 -> rounding yields sizes {3,4,3} or similar; total 10
  // and monotone by count.
  EXPECT_EQ(a->size(Group::kSmall) + a->size(Group::kMedium) +
                a->size(Group::kLarge),
            10u);
  EXPECT_GE(a->size(Group::kSmall), 3u);
  EXPECT_LE(a->size(Group::kSmall), 4u);
}

TEST(GroupsTest, OptimisticDivisionPutsHalfLarge) {
  Dataset ds = LadderDataset();
  auto a = AssignGroups(ds, {2, 3, 5});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(Group::kSmall), 2u);
  EXPECT_EQ(a->size(Group::kMedium), 3u);
  EXPECT_EQ(a->size(Group::kLarge), 5u);
}

TEST(GroupsTest, AllInOneGroup) {
  Dataset ds = LadderDataset();
  auto a = AssignGroups(ds, {1, 0, 0});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(Group::kSmall), 10u);
  auto b = AssignGroups(ds, {0, 0, 1});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(Group::kLarge), 10u);
}

TEST(GroupsTest, MonotoneByInteractionCount) {
  Dataset ds = LadderDataset();
  auto a = AssignGroups(ds, {5, 3, 2});
  ASSERT_TRUE(a.ok());
  // No small user may have more interactions than any large user.
  size_t max_small = 0, min_large = SIZE_MAX;
  for (UserId u = 0; u < 10; ++u) {
    size_t c = ds.InteractionCount(u);
    if (a->of(u) == Group::kSmall) max_small = std::max(max_small, c);
    if (a->of(u) == Group::kLarge) min_large = std::min(min_large, c);
  }
  EXPECT_LE(max_small, min_large);
}

TEST(GroupsTest, TiesBrokenDeterministically) {
  // All users identical: assignment must still hit the exact proportions
  // and be reproducible.
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 10; ++u) {
    for (ItemId i = 0; i < 3; ++i) xs.push_back({u, i});
  }
  Dataset ds = Dataset::FromInteractions(xs, 10, 3).value();
  auto a = AssignGroups(ds, {5, 3, 2});
  auto b = AssignGroups(ds, {5, 3, 2});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->size(Group::kSmall), 5u);
  for (UserId u = 0; u < 10; ++u) EXPECT_EQ(a->of(u), b->of(u));
}

TEST(GroupsTest, InvalidFractionsRejected) {
  Dataset ds = LadderDataset();
  EXPECT_FALSE(AssignGroups(ds, {0, 0, 0}).ok());
  EXPECT_FALSE(AssignGroups(ds, {-1, 1, 1}).ok());
}

TEST(GroupNameTest, Names) {
  EXPECT_EQ(GroupName(Group::kSmall), "Us");
  EXPECT_EQ(GroupName(Group::kMedium), "Um");
  EXPECT_EQ(GroupName(Group::kLarge), "Ul");
}

}  // namespace
}  // namespace hetefedrec
