// Deterministic, splittable random number generation.
//
// Every stochastic component in the library (initialization, client
// sampling, negative sampling, synthetic data) draws from an `Rng` that is
// seeded explicitly, so a fixed experiment seed reproduces a run bit-for-bit
// on one machine. `Rng::Fork(stream_id)` derives an independent stream, which
// lets each federated client own its own generator without coordination.
#ifndef HETEFEDREC_UTIL_RNG_H_
#define HETEFEDREC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hetefedrec {

/// \brief Raw serializable generator state (run checkpoints).
///
/// Captures everything that influences future draws: the four xoshiro
/// words, the origin seed that `Fork` mixes into stream derivation, and the
/// cached Box–Muller deviate. Restoring a saved state reproduces the exact
/// draw sequence from the capture point.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  uint64_t origin_seed = 0;
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// \brief xoshiro256** generator with splitmix64 seeding.
///
/// Small, fast, and high quality; avoids the heavyweight state of
/// std::mt19937_64 when thousands of clients each hold a generator.
class Rng {
 public:
  /// Seeds the four-word state by iterating splitmix64 over `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller (cached second deviate).
  double Normal();

  /// Normal with the given mean / standard deviation.
  double Normal(double mean, double stddev);

  /// Log-normal draw: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent generator for stream `stream_id`.
  /// Distinct ids give (statistically) non-overlapping streams.
  Rng Fork(uint64_t stream_id) const;

  /// Snapshots the full generator state for run checkpoints.
  RngState SaveState() const;

  /// Restores a state captured by `SaveState`.
  void RestoreState(const RngState& state);

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  uint64_t origin_seed_ = 0;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_RNG_H_
