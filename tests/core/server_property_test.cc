// Parameterized property sweeps over the heterogeneous server: the
// aggregation invariants must hold for any width ladder, aggregation mode
// and round composition.
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/hetero_server.h"

namespace hetefedrec {
namespace {

constexpr size_t kItems = 18;

using Params = std::tuple<std::vector<size_t>, AggregationMode>;

class ServerPropertyTest : public testing::TestWithParam<Params> {
 protected:
  HeteroServer MakeServer(bool shared = true) const {
    HeteroServer::Options opt;
    opt.widths = std::get<0>(GetParam());
    opt.num_items = kItems;
    opt.aggregation = std::get<1>(GetParam());
    opt.shared_aggregation = shared;
    opt.seed = 11;
    return HeteroServer(opt);
  }

  static std::vector<LocalTaskSpec> Tasks(size_t group,
                                          const std::vector<size_t>& w) {
    std::vector<LocalTaskSpec> tasks;
    for (size_t t = 0; t <= group; ++t) tasks.push_back({t, w[t]});
    return tasks;
  }

  static LocalUpdateResult Update(const HeteroServer& server,
                                  const std::vector<LocalTaskSpec>& tasks,
                                  double value) {
    LocalUpdateResult r;
    r.v_delta = Matrix(kItems, tasks.back().width);
    r.v_delta.Fill(value);
    for (const auto& t : tasks) {
      r.theta_deltas.push_back(
          FeedForwardNet::ZerosLike(server.theta(t.slot)));
    }
    return r;
  }
};

TEST_P(ServerPropertyTest, PrefixInvariantSurvivesRandomRounds) {
  const auto& widths = std::get<0>(GetParam());
  HeteroServer server = MakeServer();
  Rng rng(13);
  for (int round = 0; round < 5; ++round) {
    server.BeginRound();
    int n = 1 + static_cast<int>(rng.UniformInt(6));
    for (int c = 0; c < n; ++c) {
      size_t group = rng.UniformInt(widths.size());
      auto tasks = Tasks(group, widths);
      server.Accumulate(tasks,
                        Update(server, tasks, rng.Uniform(-2.0, 2.0)));
    }
    server.FinishRound();
    // Eq. 10: every smaller table equals the prefix of every larger one.
    for (size_t a = 0; a < server.num_slots(); ++a) {
      for (size_t b = a + 1; b < server.num_slots(); ++b) {
        for (size_t r = 0; r < kItems; ++r) {
          for (size_t c = 0; c < server.width(a); ++c) {
            ASSERT_DOUBLE_EQ(server.table(a)(r, c), server.table(b)(r, c))
                << "slots " << a << "/" << b << " at (" << r << "," << c
                << ")";
          }
        }
      }
    }
  }
}

TEST_P(ServerPropertyTest, ZeroUpdatesLeaveParametersUnchanged) {
  const auto& widths = std::get<0>(GetParam());
  HeteroServer server = MakeServer();
  std::vector<Matrix> before;
  for (size_t s = 0; s < server.num_slots(); ++s) {
    before.push_back(server.table(s));
  }
  server.BeginRound();
  for (size_t group = 0; group < widths.size(); ++group) {
    auto tasks = Tasks(group, widths);
    server.Accumulate(tasks, Update(server, tasks, 0.0));
  }
  server.FinishRound();
  for (size_t s = 0; s < server.num_slots(); ++s) {
    for (size_t i = 0; i < before[s].data().size(); ++i) {
      EXPECT_DOUBLE_EQ(server.table(s).data()[i], before[s].data()[i]);
    }
  }
}

TEST_P(ServerPropertyTest, AggregationIsOrderInvariant) {
  const auto& widths = std::get<0>(GetParam());
  auto run = [&](bool reversed) {
    HeteroServer server = MakeServer();
    std::vector<std::pair<size_t, double>> clients = {
        {0, 0.5}, {widths.size() - 1, -1.0}, {0, 2.0}};
    if (reversed) std::reverse(clients.begin(), clients.end());
    server.BeginRound();
    for (auto [group, value] : clients) {
      auto tasks = Tasks(group, widths);
      server.Accumulate(tasks, Update(server, tasks, value));
    }
    server.FinishRound();
    return server.table(server.num_slots() - 1);
  };
  Matrix forward = run(false);
  Matrix backward = run(true);
  for (size_t i = 0; i < forward.data().size(); ++i) {
    EXPECT_NEAR(forward.data()[i], backward.data()[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthLadders, ServerPropertyTest,
    testing::Combine(
        testing::Values(std::vector<size_t>{2, 4, 8},
                        std::vector<size_t>{8, 16, 32},
                        std::vector<size_t>{1, 2, 3},
                        std::vector<size_t>{3, 5, 9, 17},
                        std::vector<size_t>{4}),
        testing::Values(AggregationMode::kSum, AggregationMode::kMean)),
    [](const auto& info) {
      std::string name;
      for (size_t w : std::get<0>(info.param)) {
        name += std::to_string(w) + "_";
      }
      name += std::get<1>(info.param) == AggregationMode::kSum ? "Sum"
                                                               : "Mean";
      return name;
    });

}  // namespace
}  // namespace hetefedrec
