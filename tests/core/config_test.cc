#include "src/core/config.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/cli.h"

namespace hetefedrec {
namespace {

TEST(ConfigTest, DefaultsValid) {
  ExperimentConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigTest, ShardCountValidation) {
  ExperimentConfig cfg;
  cfg.server_shards = 1;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.server_shards = 8;
  EXPECT_TRUE(cfg.Validate().ok());
  // A negative CLI value cast through size_t must be caught.
  cfg.server_shards = static_cast<size_t>(-2);
  EXPECT_FALSE(cfg.Validate().ok());
}

// The shared flag registry and its config application agree: parsing the
// registered flags and applying them sets exactly the shared fields, and
// the all-defaults application leaves a default config unchanged in every
// results-affecting way.
TEST(ConfigTest, ApplyExperimentFlagsMatchesRegistry) {
  CommandLine cli;
  RegisterExperimentFlags(&cli);
  std::vector<std::string> raw = {
      "prog",        "--server_shards=4", "--async",
      "--seed=99",   "--agg=sum",         "--threads=3",
      "--delta_downloads", "--fault_crash=0.05", "--admission",
      "--admit_outlier_z=3.5", "--wire_format=fp16",
      "--stop_after_rounds=12"};
  std::vector<char*> argv;
  for (auto& a : raw) argv.push_back(a.data());
  ASSERT_TRUE(cli.Parse(static_cast<int>(argv.size()), argv.data()).ok());

  ExperimentConfig cfg;
  ASSERT_TRUE(ApplyExperimentFlags(cli, &cfg).ok());
  EXPECT_EQ(cfg.server_shards, 4u);
  EXPECT_TRUE(cfg.async_mode);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.aggregation, AggregationMode::kSum);
  EXPECT_EQ(cfg.num_threads, 3u);
  EXPECT_FALSE(cfg.full_downloads);
  EXPECT_DOUBLE_EQ(cfg.fault_crash, 0.05);
  EXPECT_TRUE(cfg.admission_control);
  EXPECT_DOUBLE_EQ(cfg.admit_outlier_z, 3.5);
  EXPECT_EQ(cfg.wire_scalar_bytes, 2u);
  EXPECT_EQ(cfg.debug_stop_after_rounds, 12u);
  // Fields outside the registry are untouched.
  EXPECT_EQ(cfg.dataset, "ml");
  EXPECT_EQ(cfg.global_epochs, 20);
}

TEST(ConfigTest, ApplyExperimentFlagsDefaultsAreNeutral) {
  CommandLine cli;
  RegisterExperimentFlags(&cli);
  std::vector<std::string> raw = {"prog"};
  std::vector<char*> argv;
  for (auto& a : raw) argv.push_back(a.data());
  ASSERT_TRUE(cli.Parse(static_cast<int>(argv.size()), argv.data()).ok());

  ExperimentConfig cfg;
  ASSERT_TRUE(ApplyExperimentFlags(cli, &cfg).ok());
  const ExperimentConfig def;
  EXPECT_EQ(cfg.server_shards, def.server_shards);
  EXPECT_EQ(cfg.async_mode, def.async_mode);
  EXPECT_EQ(cfg.aggregation, def.aggregation);
  EXPECT_EQ(cfg.compute_backend, def.compute_backend);
  EXPECT_EQ(cfg.wire_scalar_bytes, def.wire_scalar_bytes);
  EXPECT_EQ(cfg.full_downloads, def.full_downloads);
  EXPECT_EQ(cfg.net_bandwidth, def.net_bandwidth);
  EXPECT_EQ(cfg.net_latency, def.net_latency);
  EXPECT_EQ(cfg.fault_retry_max, def.fault_retry_max);
  EXPECT_EQ(cfg.fault_quarantine_cap, def.fault_quarantine_cap);
  EXPECT_EQ(cfg.availability, def.availability);
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigTest, ApplyExperimentFlagsRejectsBadEnums) {
  for (const std::string& bad :
       {std::string("--agg=median"), std::string("--compute_backend=fp8"),
        std::string("--wire_format=fp8")}) {
    CommandLine cli;
    RegisterExperimentFlags(&cli);
    std::vector<std::string> raw = {"prog", bad};
    std::vector<char*> argv;
    for (auto& a : raw) argv.push_back(a.data());
    ASSERT_TRUE(cli.Parse(static_cast<int>(argv.size()), argv.data()).ok());
    ExperimentConfig cfg;
    EXPECT_FALSE(ApplyExperimentFlags(cli, &cfg).ok()) << bad;
  }
}

TEST(ConfigTest, DimOrderingEnforced) {
  ExperimentConfig cfg;
  cfg.dims = {16, 8, 32};
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.dims = {0, 8, 16};
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.dims = {8, 8, 8};  // equal allowed (homogeneous runs)
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigTest, RangeChecks) {
  ExperimentConfig cfg;
  cfg.data_scale = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.global_epochs = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.lr = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.alpha = -1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.top_k = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.group_fractions = {0, 0, 0};
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.kd_items = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.ensemble_distillation = false;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigTest, FaultRateChecks) {
  ExperimentConfig cfg;
  cfg.fault_upload_loss = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_corrupt = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  // Individually valid rates whose sum exceeds 1 must be rejected: they
  // partition a single uniform draw.
  cfg.fault_upload_loss = 0.4;
  cfg.fault_download_loss = 0.4;
  cfg.fault_crash = 0.4;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_upload_loss = 0.05;
  cfg.fault_corrupt = 0.01;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigTest, BackoffChecks) {
  ExperimentConfig cfg;
  cfg.fault_retry_max = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_retry_base = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_retry_cap = 0.5;  // below the 1.0 base
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_quarantine_cap = 1.0;  // below the 5.0 base
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_jitter = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_jitter = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, AdmissionChecks) {
  ExperimentConfig cfg;
  // admit_* thresholds are dead knobs without the controller — reject so a
  // typo'd run doesn't silently skip the gates it asked for.
  cfg.admit_max_row_norm = 1.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.admit_outlier_z = 3.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.admission_control = true;
  cfg.admit_max_row_norm = 1.0;
  cfg.admit_outlier_z = 3.5;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.admit_outlier_z = -1.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, CheckpointAndResumeChecks) {
  ExperimentConfig cfg;
  cfg.checkpoint_every = 5;
  EXPECT_FALSE(cfg.Validate().ok());  // needs checkpoint_path
  cfg.checkpoint_path = "/tmp/run.ckpt";
  EXPECT_TRUE(cfg.Validate().ok());
  cfg = {};
  cfg.resume_run = true;
  EXPECT_FALSE(cfg.Validate().ok());  // needs checkpoint_path
  cfg.checkpoint_path = "/tmp/run.ckpt";
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.sync_verify_replicas = true;
  EXPECT_FALSE(cfg.Validate().ok());  // verify cache is not serialized
}

TEST(ConfigTest, MethodNamesMatchTableTwo) {
  EXPECT_EQ(MethodName(Method::kAllSmall), "All Small");
  EXPECT_EQ(MethodName(Method::kAllLargeExclusive), "All Large/Exclusive");
  EXPECT_EQ(MethodName(Method::kHeteFedRec), "HeteFedRec(Ours)");
}

TEST(ConfigTest, MethodByNameRoundTrip) {
  EXPECT_EQ(MethodByName("all_small").value(), Method::kAllSmall);
  EXPECT_EQ(MethodByName("all_large").value(), Method::kAllLarge);
  EXPECT_EQ(MethodByName("all_large_exclusive").value(),
            Method::kAllLargeExclusive);
  EXPECT_EQ(MethodByName("standalone").value(), Method::kStandalone);
  EXPECT_EQ(MethodByName("clustered").value(), Method::kClusteredFedRec);
  EXPECT_EQ(MethodByName("direct").value(), Method::kDirectlyAggregate);
  EXPECT_EQ(MethodByName("hetefedrec").value(), Method::kHeteFedRec);
  EXPECT_FALSE(MethodByName("fedavg").ok());
}

TEST(ConfigTest, HeterogeneityClassification) {
  EXPECT_FALSE(IsHeterogeneous(Method::kAllSmall));
  EXPECT_FALSE(IsHeterogeneous(Method::kAllLarge));
  EXPECT_FALSE(IsHeterogeneous(Method::kAllLargeExclusive));
  EXPECT_TRUE(IsHeterogeneous(Method::kStandalone));
  EXPECT_TRUE(IsHeterogeneous(Method::kClusteredFedRec));
  EXPECT_TRUE(IsHeterogeneous(Method::kDirectlyAggregate));
  EXPECT_TRUE(IsHeterogeneous(Method::kHeteFedRec));
}

TEST(ConfigTest, AllMethodsListComplete) {
  EXPECT_EQ(kAllMethods.size(), 7u);
  EXPECT_EQ(kAllMethods.front(), Method::kAllSmall);
  EXPECT_EQ(kAllMethods.back(), Method::kHeteFedRec);
}

}  // namespace
}  // namespace hetefedrec
