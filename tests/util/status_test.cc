#include "src/util/status.h"

#include <gtest/gtest.h>

namespace hetefedrec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  HFR_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace hetefedrec
