#include "src/util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/logging.h"

namespace hetefedrec {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  HFR_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  HFR_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << " " << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << "\n";
    return os.str();
  };
  auto render_rule = [&]() {
    std::ostringstream os;
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
    return os.str();
  };

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  os << render_rule() << render_line(header_) << render_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << render_rule();
    } else {
      os << render_line(row);
    }
  }
  os << render_rule();
  return os.str();
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  auto write_row = [&out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ",";
      // Quote cells containing commas.
      if (cells[c].find(',') != std::string::npos) {
        out << '"' << cells[c] << '"';
      } else {
        out << cells[c];
      }
    }
    out << "\n";
  };
  write_row(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) write_row(row);
  }
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::Count(long long v) {
  std::string raw = std::to_string(v);
  std::string out;
  int since_sep = 0;
  for (size_t i = raw.size(); i-- > 0;) {
    out.push_back(raw[i]);
    if (++since_sep == 3 && i > 0 && raw[i - 1] != '-') {
      out.push_back(',');
      since_sep = 0;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace hetefedrec
