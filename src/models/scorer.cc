#include "src/models/scorer.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "src/math/sparse.h"

namespace hetefedrec {

StatusOr<BaseModel> BaseModelByName(const std::string& name) {
  if (name == "ncf") return BaseModel::kNcf;
  if (name == "lightgcn") return BaseModel::kLightGcn;
  return Status::InvalidArgument("unknown base model '" + name +
                                 "' (expected ncf|lightgcn)");
}

std::string BaseModelName(BaseModel model) {
  return model == BaseModel::kNcf ? "Fed-NCF" : "Fed-LightGCN";
}

template <typename S>
ScorerT<S>::ScorerT(BaseModel model, size_t width)
    : model_(model), width_(width) {
  HFR_CHECK_GT(width, 0u);
  x_.resize(2 * width);
  dx_.resize(2 * width);
}

template <typename S>
template <typename TableT>
void ScorerT<S>::BeginUser(const S* user_emb, const TableT& item_table,
                           const std::vector<ItemId>& interacted) {
  HFR_CHECK_GE(item_table.cols(), width_);
  raw_user_.assign(user_emb, user_emb + width_);
  interacted_ = &interacted;
  pending_backward_ = false;

  if (model_ == BaseModel::kNcf) {
    pu_ = raw_user_;
    std::copy(pu_.begin(), pu_.end(), x_.begin());
    return;
  }

  // LightGCN local propagation.
  is_interacted_.assign(item_table.rows(), false);
  for (ItemId i : interacted) {
    HFR_CHECK_LT(static_cast<size_t>(i), item_table.rows());
    is_interacted_[i] = true;
  }
  const S deg = static_cast<S>(interacted.size());
  inv_sqrt_deg_ = deg > S(0) ? S(1) / std::sqrt(deg) : S(0);

  const S half(0.5);
  pu_.assign(width_, S(0));
  for (ItemId i : interacted) {
    const S* row = item_table.Row(i);
    for (size_t d = 0; d < width_; ++d) pu_[d] += row[d];
  }
  for (size_t d = 0; d < width_; ++d) {
    pu_[d] = half * (raw_user_[d] + inv_sqrt_deg_ * pu_[d]);
  }
  std::copy(pu_.begin(), pu_.end(), x_.begin());
  dpu_accum_.assign(width_, S(0));
}

template <typename S>
template <typename TableT>
void ScorerT<S>::FillItemHalf(const TableT& item_table, ItemId j,
                              S* dst) const {
  HFR_CHECK_LT(static_cast<size_t>(j), item_table.rows());
  const S* vj = item_table.Row(j);
  if (model_ == BaseModel::kNcf) {
    std::copy(vj, vj + width_, dst);
  } else {
    const S half(0.5);
    const bool linked = is_interacted_[j];
    for (size_t d = 0; d < width_; ++d) {
      S prop = linked ? inv_sqrt_deg_ * raw_user_[d] : S(0);
      dst[d] = half * (vj[d] + prop);
    }
  }
}

template <typename S>
template <typename TableT>
S ScorerT<S>::Score(const TableT& item_table, const FeedForwardNetT<S>& theta,
                    ItemId j) const {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  // The user half of x_ was filled by BeginUser; only the item half moves.
  FillItemHalf(item_table, j, x_.data() + width_);
  return theta.Forward(x_.data(), nullptr);
}

// Computes the per-user layer-0 prefix (bias + user-half terms) shared by
// every item of a batch — the batched structural win: the user half of
// [pu, pv] contributes identical first-layer partial sums for all items,
// so it is accumulated once per user instead of once per item.
template <typename S>
void ScorerT<S>::PreparePrefix(const FeedForwardNetT<S>& theta) const {
  prefix_.resize(theta.weight(0).cols());
  theta.ForwardPrefix(pu_.data(), width_, prefix_.data());
}

template <typename S>
template <typename TableT, typename IdFn>
void ScorerT<S>::ScoreBlocks(const TableT& item_table,
                             const FeedForwardNetT<S>& theta, size_t n,
                             IdFn id_of, S* out) const {
  if (batch_x_.size() != kScoreBlock * width_) {
    batch_x_.resize(kScoreBlock * width_);
  }
  for (size_t done = 0; done < n; done += kScoreBlock) {
    const size_t bs = std::min(kScoreBlock, n - done);
    for (size_t b = 0; b < bs; ++b) {
      FillItemHalf(item_table, id_of(done + b), batch_x_.data() + b * width_);
    }
    theta.ForwardBatchFromPrefix(prefix_.data(), batch_x_.data(), bs, width_,
                                 width_, out + done);
  }
}

template <typename S>
template <typename TableT>
void ScorerT<S>::ScoreBatch(const TableT& item_table,
                            const FeedForwardNetT<S>& theta, const ItemId* ids,
                            size_t n, S* out) const {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  PreparePrefix(theta);
  ScoreBlocks(item_table, theta, n, [ids](size_t k) { return ids[k]; }, out);
}

template <typename S>
template <typename TableT>
void ScorerT<S>::ScoreRange(const TableT& item_table,
                            const FeedForwardNetT<S>& theta, ItemId first,
                            size_t n, S* out) const {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  PreparePrefix(theta);
  if constexpr (std::is_same_v<TableT, MatrixT<S>>) {
    if (model_ == BaseModel::kNcf) {
      // NCF item halves are the table rows themselves: score the span in
      // place with the table's row stride — zero assembly.
      HFR_CHECK_LE(static_cast<size_t>(first) + n, item_table.rows());
      for (size_t done = 0; done < n; done += kScoreBlock) {
        const size_t bs = std::min(kScoreBlock, n - done);
        theta.ForwardBatchFromPrefix(
            prefix_.data(), item_table.Row(static_cast<size_t>(first) + done),
            bs, width_, item_table.cols(), out + done);
      }
      return;
    }
  }
  ScoreBlocks(
      item_table, theta, n,
      [first](size_t k) { return static_cast<ItemId>(first + k); }, out);
}

template <typename S>
template <typename TableT>
S ScorerT<S>::ScoreForTrain(const TableT& item_table,
                            const FeedForwardNetT<S>& theta, ItemId j,
                            TrainCache* cache) {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  cache->item = j;
  cache->item_is_interacted =
      model_ == BaseModel::kLightGcn && is_interacted_[j];
  FillItemHalf(item_table, j, x_.data() + width_);
  pending_backward_ = true;
  return theta.Forward(x_.data(), &cache->ffn);
}

template <typename S>
template <typename TableT>
void ScorerT<S>::ScoreForTrainBatch(const TableT& item_table,
                                    const FeedForwardNetT<S>& theta,
                                    const ItemId* items, size_t n,
                                    BatchTrainCache* cache, S* logits) {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  const size_t row_len = 2 * width_;
  train_x_.resize(n * row_len);
  cache->items.assign(items, items + n);
  cache->item_is_interacted.resize(n);
  for (size_t b = 0; b < n; ++b) {
    S* row = train_x_.data() + b * row_len;
    std::copy(pu_.begin(), pu_.end(), row);
    FillItemHalf(item_table, items[b], row + width_);
    cache->item_is_interacted[b] =
        model_ == BaseModel::kLightGcn && is_interacted_[items[b]] ? 1 : 0;
  }
  pending_backward_ = n > 0;
  theta.ForwardBatch(train_x_.data(), n, &cache->ffn, logits);
}

template <typename S>
template <typename GradT>
void ScorerT<S>::BackwardSample(const FeedForwardNetT<S>& theta,
                                const TrainCache& cache, S dlogit,
                                GradT* d_item_table, S* d_user,
                                FeedForwardNetT<S>* d_theta) {
  HFR_CHECK_GE(d_item_table->cols(), width_);
  theta.Backward(cache.ffn, dlogit, d_theta, dx_.data());
  const S* dpu = dx_.data();
  const S* dpv = dx_.data() + width_;
  S* dvj = d_item_table->MutableRow(cache.item);

  if (model_ == BaseModel::kNcf) {
    for (size_t d = 0; d < width_; ++d) {
      d_user[d] += dpu[d];
      dvj[d] += dpv[d];
    }
    return;
  }

  // LightGCN: pu = (u + Σ v_i /√d)/2 ; pv_j = (v_j + 1{j∈N(u)} u/√d)/2.
  const S half(0.5);
  for (size_t d = 0; d < width_; ++d) {
    d_user[d] += half * dpu[d];
    dpu_accum_[d] += dpu[d];  // scattered to v_i rows in FinishUserBackward
    dvj[d] += half * dpv[d];
  }
  if (cache.item_is_interacted) {
    const S s = half * inv_sqrt_deg_;
    for (size_t d = 0; d < width_; ++d) d_user[d] += s * dpv[d];
  }
}

template <typename S>
template <typename GradT>
void ScorerT<S>::BackwardBatch(const FeedForwardNetT<S>& theta,
                               const BatchTrainCache& cache, const S* dlogits,
                               GradT* d_item_table, S* d_user,
                               FeedForwardNetT<S>* d_theta) {
  HFR_CHECK_GE(d_item_table->cols(), width_);
  const size_t n = cache.ffn.batch;
  HFR_CHECK_EQ(cache.items.size(), n);
  batch_dx_.resize(n * 2 * width_);
  theta.BackwardBatch(cache.ffn, dlogits, d_theta, batch_dx_.data());
  // Embedding scatters in ascending sample order: multiple samples may hit
  // the same item row (or d_user / dpu_accum_), and sample order is what
  // the per-sample reference accumulates in.
  const S half(0.5);
  for (size_t b = 0; b < n; ++b) {
    const S* dpu = batch_dx_.data() + b * 2 * width_;
    const S* dpv = dpu + width_;
    S* dvj = d_item_table->MutableRow(cache.items[b]);
    if (model_ == BaseModel::kNcf) {
      for (size_t d = 0; d < width_; ++d) {
        d_user[d] += dpu[d];
        dvj[d] += dpv[d];
      }
      continue;
    }
    for (size_t d = 0; d < width_; ++d) {
      d_user[d] += half * dpu[d];
      dpu_accum_[d] += dpu[d];
      dvj[d] += half * dpv[d];
    }
    if (cache.item_is_interacted[b]) {
      const S s = half * inv_sqrt_deg_;
      for (size_t d = 0; d < width_; ++d) d_user[d] += s * dpv[d];
    }
  }
}

template <typename S>
template <typename GradT>
void ScorerT<S>::FinishUserBackward(GradT* d_item_table, S* d_user) {
  (void)d_user;
  pending_backward_ = false;
  if (model_ == BaseModel::kNcf || interacted_ == nullptr) return;
  const S s = S(0.5) * inv_sqrt_deg_;
  for (ItemId i : *interacted_) {
    S* row = d_item_table->MutableRow(i);
    for (size_t d = 0; d < width_; ++d) row[d] += s * dpu_accum_[d];
  }
  std::fill(dpu_accum_.begin(), dpu_accum_.end(), S(0));
}

// Explicit instantiations per scalar backend: dense (evaluation + reference
// dense path) and sparse (row-touched client training).
#define HFR_INSTANTIATE_SCORER(S)                                             \
  template class ScorerT<S>;                                                  \
  template void ScorerT<S>::BeginUser<MatrixT<S>>(                            \
      const S*, const MatrixT<S>&, const std::vector<ItemId>&);               \
  template void ScorerT<S>::BeginUser<RowOverlayTableT<S>>(                   \
      const S*, const RowOverlayTableT<S>&, const std::vector<ItemId>&);      \
  template S ScorerT<S>::Score<MatrixT<S>>(                                   \
      const MatrixT<S>&, const FeedForwardNetT<S>&, ItemId) const;            \
  template S ScorerT<S>::Score<RowOverlayTableT<S>>(                          \
      const RowOverlayTableT<S>&, const FeedForwardNetT<S>&, ItemId) const;   \
  template void ScorerT<S>::ScoreBatch<MatrixT<S>>(                           \
      const MatrixT<S>&, const FeedForwardNetT<S>&, const ItemId*, size_t,    \
      S*) const;                                                              \
  template void ScorerT<S>::ScoreBatch<RowOverlayTableT<S>>(                  \
      const RowOverlayTableT<S>&, const FeedForwardNetT<S>&, const ItemId*,   \
      size_t, S*) const;                                                      \
  template void ScorerT<S>::ScoreRange<MatrixT<S>>(                           \
      const MatrixT<S>&, const FeedForwardNetT<S>&, ItemId, size_t, S*)       \
      const;                                                                  \
  template void ScorerT<S>::ScoreRange<RowOverlayTableT<S>>(                  \
      const RowOverlayTableT<S>&, const FeedForwardNetT<S>&, ItemId, size_t,  \
      S*) const;                                                              \
  template S ScorerT<S>::ScoreForTrain<MatrixT<S>>(                           \
      const MatrixT<S>&, const FeedForwardNetT<S>&, ItemId, TrainCache*);     \
  template S ScorerT<S>::ScoreForTrain<RowOverlayTableT<S>>(                  \
      const RowOverlayTableT<S>&, const FeedForwardNetT<S>&, ItemId,          \
      TrainCache*);                                                           \
  template void ScorerT<S>::ScoreForTrainBatch<MatrixT<S>>(                   \
      const MatrixT<S>&, const FeedForwardNetT<S>&, const ItemId*, size_t,    \
      BatchTrainCache*, S*);                                                  \
  template void ScorerT<S>::ScoreForTrainBatch<RowOverlayTableT<S>>(          \
      const RowOverlayTableT<S>&, const FeedForwardNetT<S>&, const ItemId*,   \
      size_t, BatchTrainCache*, S*);                                          \
  template void ScorerT<S>::BackwardSample<MatrixT<S>>(                       \
      const FeedForwardNetT<S>&, const TrainCache&, S, MatrixT<S>*, S*,       \
      FeedForwardNetT<S>*);                                                   \
  template void ScorerT<S>::BackwardSample<SparseRowStoreT<S>>(               \
      const FeedForwardNetT<S>&, const TrainCache&, S, SparseRowStoreT<S>*,   \
      S*, FeedForwardNetT<S>*);                                               \
  template void ScorerT<S>::BackwardBatch<MatrixT<S>>(                        \
      const FeedForwardNetT<S>&, const BatchTrainCache&, const S*,            \
      MatrixT<S>*, S*, FeedForwardNetT<S>*);                                  \
  template void ScorerT<S>::BackwardBatch<SparseRowStoreT<S>>(                \
      const FeedForwardNetT<S>&, const BatchTrainCache&, const S*,            \
      SparseRowStoreT<S>*, S*, FeedForwardNetT<S>*);                          \
  template void ScorerT<S>::FinishUserBackward<MatrixT<S>>(MatrixT<S>*, S*);  \
  template void ScorerT<S>::FinishUserBackward<SparseRowStoreT<S>>(           \
      SparseRowStoreT<S>*, S*)

HFR_INSTANTIATE_SCORER(double);
HFR_INSTANTIATE_SCORER(float);

#undef HFR_INSTANTIATE_SCORER

}  // namespace hetefedrec
