#include "src/fed/client.h"

#include "src/math/init.h"

namespace hetefedrec {

void InitClient(ClientState* client, UserId id, Group group, size_t width,
                double init_std, const Rng& root_rng) {
  client->id = id;
  client->group = group;
  client->rng = root_rng.Fork(0x10000 + static_cast<uint64_t>(id));
  client->user_embedding = Matrix(1, width);
  InitNormal(&client->user_embedding, init_std, &client->rng);
}

}  // namespace hetefedrec
