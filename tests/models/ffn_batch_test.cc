// ForwardBatch/BackwardBatch must be bit-identical to per-sample
// Forward/Backward across widths and batch sizes (ISSUE 3 acceptance:
// widths {8,16,32}, batch sizes {1,7,64}). EXPECT_EQ on doubles is the
// point: the batched kernels preserve accumulation order exactly.
#include <gtest/gtest.h>

#include <vector>

#include "src/math/activations.h"
#include "src/models/ffn.h"
#include "src/util/rng.h"

namespace hetefedrec {
namespace {

void ExpectSameNet(const FeedForwardNet& a, const FeedForwardNet& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (size_t l = 0; l < a.num_layers(); ++l) {
    for (size_t t = 0; t < a.weight(l).data().size(); ++t) {
      ASSERT_EQ(a.weight(l).data()[t], b.weight(l).data()[t])
          << "layer " << l << " weight " << t;
    }
    for (size_t t = 0; t < a.bias(l).data().size(); ++t) {
      ASSERT_EQ(a.bias(l).data()[t], b.bias(l).data()[t])
          << "layer " << l << " bias " << t;
    }
  }
}

class FfnBatchEquivalence
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(FfnBatchEquivalence, ForwardAndBackwardBitIdentical) {
  const size_t width = std::get<0>(GetParam());
  const size_t batch = std::get<1>(GetParam());
  const size_t input_dim = 2 * width;

  FeedForwardNet net(input_dim, {8, 8});
  Rng rng(91);
  net.InitXavier(&rng);

  std::vector<double> x(batch * input_dim);
  std::vector<double> dlogits(batch);
  for (double& v : x) v = rng.Normal(0.0, 0.4);
  for (double& v : dlogits) v = rng.Normal(0.0, 1.0);
  // Exact zeros exercise the skip path shared with the scalar loops.
  for (size_t t = 0; t < x.size(); t += 7) x[t] = 0.0;

  // Batched pass.
  FeedForwardNet::BatchCache bcache;
  std::vector<double> logits_batch(batch);
  net.ForwardBatch(x.data(), batch, &bcache, logits_batch.data());
  FeedForwardNet grads_batch = FeedForwardNet::ZerosLike(net);
  std::vector<double> dx_batch(batch * input_dim);
  net.BackwardBatch(bcache, dlogits.data(), &grads_batch, dx_batch.data());

  // Per-sample reference, in ascending sample order.
  FeedForwardNet grads_ref = FeedForwardNet::ZerosLike(net);
  std::vector<double> dx_ref(input_dim);
  FeedForwardNet::Cache cache;
  for (size_t b = 0; b < batch; ++b) {
    double logit = net.Forward(x.data() + b * input_dim, &cache);
    ASSERT_EQ(logits_batch[b], logit) << "sample " << b;
    net.Backward(cache, dlogits[b], &grads_ref, dx_ref.data());
    for (size_t i = 0; i < input_dim; ++i) {
      ASSERT_EQ(dx_batch[b * input_dim + i], dx_ref[i])
          << "sample " << b << " dim " << i;
    }
  }
  ExpectSameNet(grads_batch, grads_ref);
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndBatches, FfnBatchEquivalence,
    ::testing::Combine(::testing::Values(size_t{8}, size_t{16}, size_t{32}),
                       ::testing::Values(size_t{1}, size_t{7}, size_t{64})));

TEST(FfnBatchTest, EmptyBatchIsANoOp) {
  FeedForwardNet net(8, {8, 8});
  Rng rng(3);
  net.InitXavier(&rng);
  FeedForwardNet::BatchCache cache;
  net.ForwardBatch(nullptr, 0, &cache, nullptr);
  EXPECT_EQ(cache.batch, 0u);
  FeedForwardNet grads = FeedForwardNet::ZerosLike(net);
  net.BackwardBatch(cache, nullptr, &grads, nullptr);
  EXPECT_EQ(grads.MaxAbs(), 0.0);
}

TEST(FfnBatchTest, GradientAccumulationComposesAcrossCalls) {
  // Two consecutive batched backwards into one accumulator must equal the
  // eight per-sample backwards in the same global order.
  const size_t input_dim = 16;
  FeedForwardNet net(input_dim, {8, 8});
  Rng rng(5);
  net.InitXavier(&rng);
  std::vector<double> x(8 * input_dim);
  std::vector<double> dlogits(8);
  for (double& v : x) v = rng.Normal(0.0, 0.4);
  for (double& v : dlogits) v = rng.Normal(0.0, 1.0);

  FeedForwardNet grads_batch = FeedForwardNet::ZerosLike(net);
  FeedForwardNet::BatchCache bcache;
  std::vector<double> logits(4);
  for (size_t half = 0; half < 2; ++half) {
    net.ForwardBatch(x.data() + half * 4 * input_dim, 4, &bcache,
                     logits.data());
    net.BackwardBatch(bcache, dlogits.data() + half * 4, &grads_batch,
                      nullptr);
  }

  FeedForwardNet grads_ref = FeedForwardNet::ZerosLike(net);
  FeedForwardNet::Cache cache;
  for (size_t b = 0; b < 8; ++b) {
    net.Forward(x.data() + b * input_dim, &cache);
    net.Backward(cache, dlogits[b], &grads_ref, nullptr);
  }
  ExpectSameNet(grads_batch, grads_ref);
}

}  // namespace
}  // namespace hetefedrec
