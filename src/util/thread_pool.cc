#include "src/util/thread_pool.h"

#include "src/util/logging.h"

namespace hetefedrec {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::RunShare(size_t slot) {
  const auto& fn = *job_;
  const size_t n = job_size_;
  for (;;) {
    const size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i, slot);
  }
}

void ThreadPool::WorkerLoop(size_t slot) {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || job_epoch_ != seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
    }
    RunShare(slot);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    HFR_CHECK(job_ == nullptr);  // no nested/concurrent ParallelFor
    job_ = &fn;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++job_epoch_;
  }
  work_cv_.notify_all();
  RunShare(workers_.size());  // the caller takes the last slot
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    job_ = nullptr;
  }
}

}  // namespace hetefedrec
