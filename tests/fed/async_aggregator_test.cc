// AsyncAggregator unit semantics: virtual-time event ordering, the
// staleness-weight formula, the zero-gap == synchronous-merge identity,
// the max-staleness drop policy and the distillation cadence.
#include "src/fed/sync/async_aggregator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/hetero_server.h"

namespace hetefedrec {
namespace {

constexpr size_t kItems = 24;

HeteroServer::Options ServerOptions() {
  HeteroServer::Options opt;
  opt.widths = {2, 4, 8};
  opt.num_items = kItems;
  opt.embed_init_std = 0.1;
  opt.aggregation = AggregationMode::kMean;
  opt.shared_aggregation = true;
  opt.seed = 3;
  return opt;
}

std::vector<LocalTaskSpec> TasksUpTo(size_t group,
                                     const std::vector<size_t>& widths) {
  std::vector<LocalTaskSpec> tasks;
  for (size_t t = 0; t <= group; ++t) tasks.push_back({t, widths[t]});
  return tasks;
}

LocalUpdateResult MakeUpdate(size_t width, double v_value,
                             const std::vector<LocalTaskSpec>& tasks,
                             const HeteroServer& server) {
  LocalUpdateResult r;
  r.v_delta = Matrix(kItems, width);
  r.v_delta.Fill(v_value);
  for (const auto& task : tasks) {
    r.theta_deltas.push_back(
        FeedForwardNet::ZerosLike(server.theta(task.slot)));
  }
  r.train_loss = v_value;
  r.params_up = 7;
  return r;
}

void ExpectTablesEqual(const HeteroServer& a, const HeteroServer& b) {
  ASSERT_EQ(a.num_slots(), b.num_slots());
  for (size_t s = 0; s < a.num_slots(); ++s) {
    for (size_t r = 0; r < a.table(s).rows(); ++r) {
      for (size_t c = 0; c < a.table(s).cols(); ++c) {
        EXPECT_EQ(a.table(s)(r, c), b.table(s)(r, c))
            << "slot " << s << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST(AsyncAggregatorTest, StalenessWeightFormula) {
  HeteroServer server(ServerOptions());
  AsyncAggregator::Options opt;
  opt.staleness_alpha = 0.5;
  AsyncAggregator agg(&server, opt);
  // w(0) must be *exactly* 1 — a fresh arrival is a synchronous merge.
  EXPECT_EQ(agg.StalenessWeight(0), 1.0);
  EXPECT_DOUBLE_EQ(agg.StalenessWeight(3), 0.5);   // 1/sqrt(4)
  EXPECT_DOUBLE_EQ(agg.StalenessWeight(15), 0.25);  // 1/sqrt(16)
  EXPECT_GT(agg.StalenessWeight(100), 0.0);

  AsyncAggregator::Options flat;
  flat.staleness_alpha = 0.0;
  AsyncAggregator no_damp(&server, flat);
  EXPECT_EQ(no_damp.StalenessWeight(1000), 1.0);
}

// The satellite invariant: a zero-gap async merge must produce the same
// tables as the synchronous round machinery merging the same single
// update — bit-identical, under the default kMean configuration.
TEST(AsyncAggregatorTest, ZeroGapMergeEqualsSynchronousMerge) {
  auto opt = ServerOptions();
  HeteroServer sync_server(opt);
  HeteroServer async_server(opt);
  auto tasks = TasksUpTo(2, opt.widths);
  LocalUpdateResult update = MakeUpdate(8, 0.25, tasks, sync_server);

  sync_server.BeginRound();
  sync_server.Accumulate(tasks, update);
  sync_server.FinishRound();

  AsyncAggregator agg(&async_server, AsyncAggregator::Options{});
  agg.Submit(0, &tasks, MakeUpdate(8, 0.25, tasks, async_server), 0, 1.0);
  AsyncAggregator::Outcome out = agg.MergeNext(DistillationOptions{}, nullptr);
  EXPECT_TRUE(out.merged);
  EXPECT_EQ(out.staleness, 0u);
  EXPECT_EQ(out.weight, 1.0);

  ExpectTablesEqual(sync_server, async_server);
  // Both advanced the version exactly once.
  EXPECT_EQ(sync_server.versions().round(), async_server.versions().round());
}

TEST(AsyncAggregatorTest, EventsPopInVirtualTimeOrderWithSeqTiebreak) {
  auto opt = ServerOptions();
  HeteroServer server(opt);
  auto tasks = TasksUpTo(0, opt.widths);
  AsyncAggregator agg(&server, AsyncAggregator::Options{});

  agg.Submit(7, &tasks, MakeUpdate(2, 0.1, tasks, server), 0, 5.0);
  agg.Submit(3, &tasks, MakeUpdate(2, 0.1, tasks, server), 0, 2.0);
  agg.Submit(9, &tasks, MakeUpdate(2, 0.1, tasks, server), 0, 2.0);
  agg.Submit(1, &tasks, MakeUpdate(2, 0.1, tasks, server), 0, 9.0);
  EXPECT_EQ(agg.in_flight(), 4u);

  std::vector<UserId> order;
  std::vector<double> clocks;
  while (!agg.empty()) {
    auto out = agg.MergeNext(DistillationOptions{}, nullptr);
    order.push_back(out.user);
    clocks.push_back(out.finish_seconds);
    EXPECT_EQ(agg.clock_seconds(), out.finish_seconds);
  }
  // Time order; the 2.0s tie breaks by submission sequence (3 before 9).
  EXPECT_EQ(order, (std::vector<UserId>{3, 9, 7, 1}));
  EXPECT_EQ(clocks, (std::vector<double>{2.0, 2.0, 5.0, 9.0}));
  EXPECT_EQ(agg.merged_updates(), 4u);
}

TEST(AsyncAggregatorTest, StalenessCountsMergesSinceDownload) {
  auto opt = ServerOptions();
  HeteroServer server(opt);
  auto tasks = TasksUpTo(1, opt.widths);
  AsyncAggregator::Options aopt;
  aopt.staleness_alpha = 1.0;
  AsyncAggregator agg(&server, aopt);

  // Three clients all downloaded version 0; each merge advances the
  // version, so their staleness gaps are 0, 1, 2 and their weights
  // 1, 1/2, 1/3.
  const uint64_t v0 = server.versions().round();
  for (int k = 0; k < 3; ++k) {
    agg.Submit(static_cast<UserId>(k), &tasks,
               MakeUpdate(4, 0.1, tasks, server), v0, 1.0 + k);
  }
  auto a = agg.MergeNext(DistillationOptions{}, nullptr);
  auto b = agg.MergeNext(DistillationOptions{}, nullptr);
  auto c = agg.MergeNext(DistillationOptions{}, nullptr);
  EXPECT_EQ(a.staleness, 0u);
  EXPECT_EQ(b.staleness, 1u);
  EXPECT_EQ(c.staleness, 2u);
  EXPECT_EQ(a.weight, 1.0);
  EXPECT_DOUBLE_EQ(b.weight, 0.5);
  EXPECT_DOUBLE_EQ(c.weight, 1.0 / 3.0);
}

TEST(AsyncAggregatorTest, MaxStalenessDropsWithoutMutatingTables) {
  auto opt = ServerOptions();
  HeteroServer server(opt);
  auto tasks = TasksUpTo(1, opt.widths);
  AsyncAggregator::Options aopt;
  aopt.max_staleness = 1;
  AsyncAggregator agg(&server, aopt);

  const uint64_t v0 = server.versions().round();
  for (int k = 0; k < 3; ++k) {
    agg.Submit(static_cast<UserId>(k), &tasks,
               MakeUpdate(4, 0.5, tasks, server), v0, 1.0 + k);
  }
  auto a = agg.MergeNext(DistillationOptions{}, nullptr);
  auto b = agg.MergeNext(DistillationOptions{}, nullptr);
  EXPECT_TRUE(a.merged);
  EXPECT_TRUE(b.merged);

  // The third arrival has gap 2 > max_staleness 1: dropped, tables and
  // version untouched, outcome still echoes the client for requeueing.
  const Matrix before = server.table(2);
  const uint64_t version_before = server.versions().round();
  auto c = agg.MergeNext(DistillationOptions{}, nullptr);
  EXPECT_FALSE(c.merged);
  EXPECT_EQ(c.weight, 0.0);
  EXPECT_EQ(c.user, 2u);
  EXPECT_EQ(agg.dropped_updates(), 1u);
  EXPECT_EQ(agg.merged_updates(), 2u);
  EXPECT_EQ(server.versions().round(), version_before);
  for (size_t r = 0; r < before.rows(); ++r) {
    for (size_t col = 0; col < before.cols(); ++col) {
      EXPECT_EQ(server.table(2)(r, col), before(r, col));
    }
  }
}

TEST(AsyncAggregatorTest, DistillationFiresEveryNMerges) {
  auto opt = ServerOptions();
  HeteroServer server(opt);
  auto tasks = TasksUpTo(2, opt.widths);
  AsyncAggregator::Options aopt;
  aopt.distill_every = 3;
  AsyncAggregator agg(&server, aopt);
  DistillationOptions kd;
  kd.kd_items = 4;
  kd.steps = 1;
  kd.lr = 0.01;
  Rng kd_rng(11);

  int distills = 0;
  for (int k = 0; k < 7; ++k) {
    agg.Submit(static_cast<UserId>(k), &tasks,
               MakeUpdate(8, 0.01, tasks, server),
               server.versions().round(), static_cast<double>(k + 1));
    auto out = agg.MergeNext(kd, &kd_rng);
    if (out.distilled) distills++;
  }
  EXPECT_EQ(distills, 2);  // after merges 3 and 6

  // Null rng (RESKD off) never distills regardless of cadence.
  agg.Submit(99, &tasks, MakeUpdate(8, 0.01, tasks, server),
             server.versions().round(), 100.0);
  EXPECT_FALSE(agg.MergeNext(kd, nullptr).distilled);
}

}  // namespace
}  // namespace hetefedrec
