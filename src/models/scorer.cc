#include "src/models/scorer.h"

#include <algorithm>
#include <cmath>

#include "src/math/sparse.h"

namespace hetefedrec {

StatusOr<BaseModel> BaseModelByName(const std::string& name) {
  if (name == "ncf") return BaseModel::kNcf;
  if (name == "lightgcn") return BaseModel::kLightGcn;
  return Status::InvalidArgument("unknown base model '" + name +
                                 "' (expected ncf|lightgcn)");
}

std::string BaseModelName(BaseModel model) {
  return model == BaseModel::kNcf ? "Fed-NCF" : "Fed-LightGCN";
}

Scorer::Scorer(BaseModel model, size_t width) : model_(model), width_(width) {
  HFR_CHECK_GT(width, 0u);
  x_.resize(2 * width);
  dx_.resize(2 * width);
}

template <typename TableT>
void Scorer::BeginUser(const double* user_emb, const TableT& item_table,
                       const std::vector<ItemId>& interacted) {
  HFR_CHECK_GE(item_table.cols(), width_);
  raw_user_.assign(user_emb, user_emb + width_);
  interacted_ = &interacted;
  pending_backward_ = false;

  if (model_ == BaseModel::kNcf) {
    pu_ = raw_user_;
    return;
  }

  // LightGCN local propagation.
  is_interacted_.assign(item_table.rows(), false);
  for (ItemId i : interacted) {
    HFR_CHECK_LT(static_cast<size_t>(i), item_table.rows());
    is_interacted_[i] = true;
  }
  const double deg = static_cast<double>(interacted.size());
  inv_sqrt_deg_ = deg > 0 ? 1.0 / std::sqrt(deg) : 0.0;

  pu_.assign(width_, 0.0);
  for (ItemId i : interacted) {
    const double* row = item_table.Row(i);
    for (size_t d = 0; d < width_; ++d) pu_[d] += row[d];
  }
  for (size_t d = 0; d < width_; ++d) {
    pu_[d] = 0.5 * (raw_user_[d] + inv_sqrt_deg_ * pu_[d]);
  }
  dpu_accum_.assign(width_, 0.0);
}

template <typename TableT>
double Scorer::Score(const TableT& item_table, const FeedForwardNet& theta,
                     ItemId j) const {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  HFR_CHECK_LT(static_cast<size_t>(j), item_table.rows());
  const double* vj = item_table.Row(j);
  std::copy(pu_.begin(), pu_.end(), x_.begin());
  if (model_ == BaseModel::kNcf) {
    std::copy(vj, vj + width_, x_.begin() + width_);
  } else {
    const bool linked = is_interacted_[j];
    for (size_t d = 0; d < width_; ++d) {
      double prop = linked ? inv_sqrt_deg_ * raw_user_[d] : 0.0;
      x_[width_ + d] = 0.5 * (vj[d] + prop);
    }
  }
  return theta.Forward(x_.data(), nullptr);
}

template <typename TableT>
double Scorer::ScoreForTrain(const TableT& item_table,
                             const FeedForwardNet& theta, ItemId j,
                             TrainCache* cache) {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  HFR_CHECK_LT(static_cast<size_t>(j), item_table.rows());
  const double* vj = item_table.Row(j);
  std::copy(pu_.begin(), pu_.end(), x_.begin());
  cache->item = j;
  if (model_ == BaseModel::kNcf) {
    cache->item_is_interacted = false;
    std::copy(vj, vj + width_, x_.begin() + width_);
  } else {
    cache->item_is_interacted = is_interacted_[j];
    for (size_t d = 0; d < width_; ++d) {
      double prop =
          cache->item_is_interacted ? inv_sqrt_deg_ * raw_user_[d] : 0.0;
      x_[width_ + d] = 0.5 * (vj[d] + prop);
    }
  }
  pending_backward_ = true;
  return theta.Forward(x_.data(), &cache->ffn);
}

template <typename GradT>
void Scorer::BackwardSample(const FeedForwardNet& theta,
                            const TrainCache& cache, double dlogit,
                            GradT* d_item_table, double* d_user,
                            FeedForwardNet* d_theta) {
  HFR_CHECK_GE(d_item_table->cols(), width_);
  theta.Backward(cache.ffn, dlogit, d_theta, dx_.data());
  const double* dpu = dx_.data();
  const double* dpv = dx_.data() + width_;
  double* dvj = d_item_table->MutableRow(cache.item);

  if (model_ == BaseModel::kNcf) {
    for (size_t d = 0; d < width_; ++d) {
      d_user[d] += dpu[d];
      dvj[d] += dpv[d];
    }
    return;
  }

  // LightGCN: pu = (u + Σ v_i /√d)/2 ; pv_j = (v_j + 1{j∈N(u)} u/√d)/2.
  for (size_t d = 0; d < width_; ++d) {
    d_user[d] += 0.5 * dpu[d];
    dpu_accum_[d] += dpu[d];  // scattered to v_i rows in FinishUserBackward
    dvj[d] += 0.5 * dpv[d];
  }
  if (cache.item_is_interacted) {
    const double s = 0.5 * inv_sqrt_deg_;
    for (size_t d = 0; d < width_; ++d) d_user[d] += s * dpv[d];
  }
}

template <typename GradT>
void Scorer::FinishUserBackward(GradT* d_item_table, double* d_user) {
  (void)d_user;
  pending_backward_ = false;
  if (model_ == BaseModel::kNcf || interacted_ == nullptr) return;
  const double s = 0.5 * inv_sqrt_deg_;
  for (ItemId i : *interacted_) {
    double* row = d_item_table->MutableRow(i);
    for (size_t d = 0; d < width_; ++d) row[d] += s * dpu_accum_[d];
  }
  std::fill(dpu_accum_.begin(), dpu_accum_.end(), 0.0);
}

// Explicit instantiations: dense (evaluation + reference dense path) and
// sparse (row-touched client training).
template void Scorer::BeginUser<Matrix>(const double*, const Matrix&,
                                        const std::vector<ItemId>&);
template void Scorer::BeginUser<RowOverlayTable>(const double*,
                                                 const RowOverlayTable&,
                                                 const std::vector<ItemId>&);
template double Scorer::Score<Matrix>(const Matrix&, const FeedForwardNet&,
                                      ItemId) const;
template double Scorer::Score<RowOverlayTable>(const RowOverlayTable&,
                                               const FeedForwardNet&,
                                               ItemId) const;
template double Scorer::ScoreForTrain<Matrix>(const Matrix&,
                                              const FeedForwardNet&, ItemId,
                                              TrainCache*);
template double Scorer::ScoreForTrain<RowOverlayTable>(const RowOverlayTable&,
                                                       const FeedForwardNet&,
                                                       ItemId, TrainCache*);
template void Scorer::BackwardSample<Matrix>(const FeedForwardNet&,
                                             const TrainCache&, double,
                                             Matrix*, double*,
                                             FeedForwardNet*);
template void Scorer::BackwardSample<SparseRowStore>(const FeedForwardNet&,
                                                     const TrainCache&,
                                                     double, SparseRowStore*,
                                                     double*,
                                                     FeedForwardNet*);
template void Scorer::FinishUserBackward<Matrix>(Matrix*, double*);
template void Scorer::FinishUserBackward<SparseRowStore>(SparseRowStore*,
                                                         double*);

}  // namespace hetefedrec
