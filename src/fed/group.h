// Client resource groups (§IV-A): small / medium / large, assigned by
// interaction count.
#ifndef HETEFEDREC_FED_GROUP_H_
#define HETEFEDREC_FED_GROUP_H_

#include <string>

namespace hetefedrec {

/// The paper's three client groups Us, Um, Ul.
enum class Group : int { kSmall = 0, kMedium = 1, kLarge = 2 };

inline constexpr int kNumGroups = 3;

/// "Us" / "Um" / "Ul".
inline std::string GroupName(Group g) {
  switch (g) {
    case Group::kSmall:
      return "Us";
    case Group::kMedium:
      return "Um";
    case Group::kLarge:
      return "Ul";
  }
  return "?";
}

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_GROUP_H_
