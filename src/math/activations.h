// Scalar activations and the binary cross-entropy loss (Eq. 2).
//
// Everything is written against logits where possible for numerical
// stability: the recommendation loss is computed as BCE-with-logits so no
// intermediate sigmoid can saturate to exactly 0 or 1.
#ifndef HETEFEDREC_MATH_ACTIVATIONS_H_
#define HETEFEDREC_MATH_ACTIVATIONS_H_

#include <cstddef>

namespace hetefedrec {

/// Numerically stable logistic function.
double Sigmoid(double x);

/// ReLU. Templated so both compute backends (double/float) share it; the
/// comparison-and-select form is exact in either width.
template <typename T>
inline T Relu(T x) {
  return x > T(0) ? x : T(0);
}

/// dReLU/dx given the forward input.
template <typename T>
inline T ReluGrad(T x) {
  return x > T(0) ? T(1) : T(0);
}

/// \brief Stable binary cross entropy on a logit.
///
/// Computes -[y log sigmoid(z) + (1-y) log(1 - sigmoid(z))] without forming
/// the sigmoid: max(z,0) - z*y + log(1 + exp(-|z|)).
double BceWithLogits(double logit, double label);

/// dBCE/dlogit = sigmoid(logit) - label.
double BceWithLogitsGrad(double logit, double label);

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_ACTIVATIONS_H_
