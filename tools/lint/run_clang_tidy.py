#!/usr/bin/env python3
"""Parallel clang-tidy driver over compile_commands.json.

Runs the checked-in .clang-tidy profile over the project's own translation
units (src/ by default — the curated profile's scope; see .clang-tidy) and
fails on any diagnostic, since the profile sets WarningsAsErrors: '*'.

Configure with compile commands first:

    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

Then:

    python3 tools/lint/run_clang_tidy.py                 # src/ TUs
    python3 tools/lint/run_clang_tidy.py --filter .      # every TU
    python3 tools/lint/run_clang_tidy.py --jobs 4

Exit codes: 0 clean, 1 findings, 2 setup error, 77 clang-tidy not installed
(with --skip-missing; 77 is the ctest/automake SKIP convention, so a ctest
entry with SKIP_RETURN_CODE 77 reports "skipped" instead of failing on
machines without clang-tidy).
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

CANDIDATE_BINARIES = [
    "clang-tidy",
    "clang-tidy-20", "clang-tidy-19", "clang-tidy-18", "clang-tidy-17",
    "clang-tidy-16", "clang-tidy-15", "clang-tidy-14",
]

# Flags clang-tidy's bundled clang may not understand when the database was
# produced for gcc; stripped from each compile command.
STRIP_FLAGS = {"-fno-canonical-system-headers", "-mno-avx256-split-unaligned-load",
               "-mno-avx256-split-unaligned-store"}


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CANDIDATE_BINARIES:
        if shutil.which(name):
            return name
    return None


def load_database(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print("run_clang_tidy: cannot read {}: {}".format(path, e),
              file=sys.stderr)
        sys.exit(2)


def run_one(binary, build_dir, source):
    cmd = [binary, "--quiet", "-p", build_dir, source]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # clang-tidy prints "N warnings generated." noise on stderr; diagnostics
    # we care about land on stdout as file:line:col: warning/error: ...
    diag_re = re.compile(r"^[^ ]+:\d+:\d+: (warning|error):")
    diags = [line for line in proc.stdout.splitlines()
             if diag_re.match(line)]
    return source, proc.returncode, diags, proc.stdout


def main(argv):
    ap = argparse.ArgumentParser(prog="run_clang_tidy",
                                 description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="directory holding compile_commands.json "
                         "(default: build)")
    ap.add_argument("--filter", default=r"/src/",
                    help="regex a TU's path must match (default: /src/)")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary to use (default: search PATH)")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--skip-missing", action="store_true",
                    help="exit 77 (skip) instead of 2 when clang-tidy is "
                         "not installed")
    args = ap.parse_args(argv)

    binary = find_clang_tidy(args.clang_tidy)
    if binary is None:
        msg = "run_clang_tidy: no clang-tidy binary on PATH"
        if args.skip_missing:
            print(msg + " — skipping (exit 77)")
            return 77
        print(msg, file=sys.stderr)
        return 2

    db_path = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print("run_clang_tidy: {} not found — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first".format(db_path),
              file=sys.stderr)
        return 2

    pattern = re.compile(args.filter)
    sources = sorted({entry["file"] for entry in load_database(db_path)
                      if pattern.search(entry["file"])})
    if not sources:
        print("run_clang_tidy: no TUs match filter {!r}".format(args.filter),
              file=sys.stderr)
        return 2

    print("run_clang_tidy: {} on {} TU(s), {} job(s)".format(
        binary, len(sources), args.jobs))
    total_diags = 0
    failed_tus = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(run_one, binary, args.build_dir, s)
                   for s in sources]
        for fut in concurrent.futures.as_completed(futures):
            source, rc, diags, out = fut.result()
            if diags or rc != 0:
                failed_tus.append(source)
                total_diags += len(diags)
                sys.stdout.write(out)
    print("run_clang_tidy: {} diagnostic(s) in {} of {} TU(s)".format(
        total_diags, len(failed_tus), len(sources)))
    return 1 if failed_tus else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
