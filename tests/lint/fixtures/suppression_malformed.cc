// Fixture: suppressions without reasons are themselves findings, and a
// reasonless suppression does not silence the underlying violation.
#include <chrono>

double Sample() {
  // hfr-lint: allow(R1):
  const auto t0 = std::chrono::steady_clock::now();  // finding survives
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

void Decl() {
  // hfr-lint: iteration-order-safe()
  int x = 0;  // the empty-reason annotation above is a finding
  (void)x;
}
