#include "src/data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/data/dataset.h"
#include "src/data/stats.h"

namespace hetefedrec {
namespace {

TEST(SyntheticTest, PresetsCarryTableOneSizes) {
  SyntheticConfig ml = MovieLensConfig(1.0);
  EXPECT_EQ(ml.num_users, 6040u);
  EXPECT_EQ(ml.num_items, 3706u);
  SyntheticConfig anime = AnimeConfig(1.0);
  EXPECT_EQ(anime.num_users, 10482u);
  SyntheticConfig douban = DoubanConfig(1.0);
  EXPECT_EQ(douban.num_items, 7397u);
}

TEST(SyntheticTest, ScaleShrinksSubLinearly) {
  SyntheticConfig half = MovieLensConfig(0.5);
  EXPECT_EQ(half.num_users, 3020u);  // users ∝ scale
  // items ∝ scale^0.6: catalogues shrink slower than audiences.
  EXPECT_EQ(half.num_items,
            static_cast<size_t>(3706 * std::pow(0.5, 0.6)));
  EXPECT_GT(half.num_items, 3706u / 2);
}

TEST(SyntheticTest, ConfigByName) {
  EXPECT_TRUE(DatasetConfigByName("ml", 0.1).ok());
  EXPECT_TRUE(DatasetConfigByName("movielens", 0.1).ok());
  EXPECT_TRUE(DatasetConfigByName("anime", 0.1).ok());
  EXPECT_TRUE(DatasetConfigByName("douban", 0.1).ok());
  EXPECT_FALSE(DatasetConfigByName("netflix", 0.1).ok());
}

TEST(SyntheticTest, InteractionsInRangeAndUnique) {
  SyntheticConfig cfg = MovieLensConfig(0.05);
  auto xs = GenerateInteractions(cfg);
  ASSERT_FALSE(xs.empty());
  std::set<std::pair<UserId, ItemId>> seen;
  for (const Interaction& x : xs) {
    EXPECT_GE(x.user, 0);
    EXPECT_LT(static_cast<size_t>(x.user), cfg.num_users);
    EXPECT_GE(x.item, 0);
    EXPECT_LT(static_cast<size_t>(x.item), cfg.num_items);
    EXPECT_TRUE(seen.insert({x.user, x.item}).second)
        << "duplicate interaction " << x.user << "," << x.item;
  }
}

TEST(SyntheticTest, EveryUserMeetsMinimumInteractions) {
  SyntheticConfig cfg = AnimeConfig(0.05);
  auto xs = GenerateInteractions(cfg);
  std::vector<size_t> counts(cfg.num_users, 0);
  for (const Interaction& x : xs) counts[x.user]++;
  for (size_t u = 0; u < cfg.num_users; ++u) {
    EXPECT_GE(counts[u], cfg.min_interactions) << "user " << u;
  }
}

TEST(SyntheticTest, Deterministic) {
  SyntheticConfig cfg = MovieLensConfig(0.03);
  auto a = GenerateInteractions(cfg);
  auto b = GenerateInteractions(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

TEST(SyntheticTest, SeedChangesData) {
  SyntheticConfig cfg = MovieLensConfig(0.03);
  auto a = GenerateInteractions(cfg);
  cfg.seed += 1;
  auto b = GenerateInteractions(cfg);
  bool any_diff = a.size() != b.size();
  for (size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = !(a[i] == b[i]);
  }
  EXPECT_TRUE(any_diff);
}

// Calibration property: the generated per-user interaction counts should
// land near the paper's published median / 80th percentile (Table I).
class CalibrationTest : public testing::TestWithParam<const char*> {};

TEST_P(CalibrationTest, MedianAndP80NearPaper) {
  struct Target {
    const char* name;
    double median, p80;
  };
  static constexpr Target kTargets[] = {
      {"ml", 77, 203}, {"anime", 69, 150}, {"douban", 115, 244}};
  const Target* target = nullptr;
  for (const auto& t : kTargets) {
    if (std::string(t.name) == GetParam()) target = &t;
  }
  ASSERT_NE(target, nullptr);

  // Moderate scale keeps users plentiful while capping runtime. Per-user
  // counts shrink as scale^0.3 by design (see synthetic.cc), so compare
  // against the correspondingly scaled paper targets.
  const double data_scale = 0.2;
  const double count_scale = std::pow(data_scale, 0.3);
  auto cfg = DatasetConfigByName(GetParam(), data_scale);
  ASSERT_TRUE(cfg.ok());
  auto ds = Dataset::FromInteractions(GenerateInteractions(*cfg),
                                      cfg->num_users, cfg->num_items);
  ASSERT_TRUE(ds.ok());
  DatasetStats stats = ComputeDatasetStats(*ds);
  // 25% tolerance: the log-normal is clipped at min_interactions and at
  // max_fraction_of_items of the (scaled) catalogue.
  EXPECT_NEAR(stats.median_interactions, target->median * count_scale,
              0.25 * target->median * count_scale);
  EXPECT_NEAR(stats.p80_interactions, target->p80 * count_scale,
              0.25 * target->p80 * count_scale);
  // Heavy tail present: stddev comparable to the mean (Fig. 1's motivation).
  EXPECT_GT(stats.stddev_interactions, 0.4 * stats.avg_interactions);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, CalibrationTest,
                         testing::Values("ml", "anime", "douban"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(SyntheticTest, CollaborativeStructureExists) {
  // Users in the same cluster should overlap more than random: verify that
  // the popularity distribution is non-uniform (Zipf) as a cheap proxy.
  SyntheticConfig cfg = MovieLensConfig(0.05);
  auto ds = Dataset::FromInteractions(GenerateInteractions(cfg),
                                      cfg.num_users, cfg.num_items);
  ASSERT_TRUE(ds.ok());
  auto pop = ds->ItemPopularity();
  std::sort(pop.begin(), pop.end(), std::greater<size_t>());
  size_t top_decile = 0, total = 0;
  for (size_t i = 0; i < pop.size(); ++i) {
    if (i < pop.size() / 10) top_decile += pop[i];
    total += pop[i];
  }
  // The most popular 10% of items should attract clearly more than 10% of
  // traffic (the default Zipf exponent is deliberately mild — see
  // synthetic.h — so the margin is modest).
  EXPECT_GT(static_cast<double>(top_decile) / static_cast<double>(total),
            0.13);
}

}  // namespace
}  // namespace hetefedrec
