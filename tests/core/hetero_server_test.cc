#include "src/core/hetero_server.h"

#include <gtest/gtest.h>

namespace hetefedrec {
namespace {

constexpr size_t kItems = 20;

HeteroServer::Options BaseOptions(bool shared = true,
                                  AggregationMode mode =
                                      AggregationMode::kSum) {
  HeteroServer::Options opt;
  opt.widths = {2, 4, 8};
  opt.num_items = kItems;
  opt.embed_init_std = 0.1;
  opt.aggregation = mode;
  opt.shared_aggregation = shared;
  opt.seed = 3;
  return opt;
}

LocalUpdateResult MakeUpdate(size_t width, double v_value,
                             const std::vector<LocalTaskSpec>& tasks,
                             const HeteroServer& server) {
  LocalUpdateResult r;
  r.v_delta = Matrix(kItems, width);
  r.v_delta.Fill(v_value);
  for (const auto& task : tasks) {
    FeedForwardNet d = FeedForwardNet::ZerosLike(server.theta(task.slot));
    r.theta_deltas.push_back(std::move(d));
  }
  return r;
}

std::vector<LocalTaskSpec> TasksUpTo(size_t group,
                                     const std::vector<size_t>& widths) {
  std::vector<LocalTaskSpec> tasks;
  for (size_t t = 0; t <= group; ++t) tasks.push_back({t, widths[t]});
  return tasks;
}

TEST(HeteroServerTest, InitializationSharesPrefixes) {
  HeteroServer server(BaseOptions());
  // Eq. 10 precondition: Vs = Vm[:, :Ns] = Vl[:, :Ns] at t=0.
  for (size_t r = 0; r < kItems; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(server.table(0)(r, c), server.table(2)(r, c));
      EXPECT_DOUBLE_EQ(server.table(0)(r, c), server.table(1)(r, c));
    }
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(server.table(1)(r, c), server.table(2)(r, c));
    }
  }
}

TEST(HeteroServerTest, ThetaInputDimsFollowWidths) {
  HeteroServer server(BaseOptions());
  EXPECT_EQ(server.theta(0).input_dim(), 4u);
  EXPECT_EQ(server.theta(1).input_dim(), 8u);
  EXPECT_EQ(server.theta(2).input_dim(), 16u);
}

TEST(HeteroServerTest, PaddedSumAggregation) {
  // Eq. 7-9 with kSum: columns accumulate every update that reaches them.
  auto opt = BaseOptions(true, AggregationMode::kSum);
  HeteroServer server(opt);
  Matrix before_l = server.table(2);

  server.BeginRound();
  auto small_tasks = TasksUpTo(0, opt.widths);
  auto large_tasks = TasksUpTo(2, opt.widths);
  server.Accumulate(small_tasks, MakeUpdate(2, 1.0, small_tasks, server));
  server.Accumulate(large_tasks, MakeUpdate(8, 0.5, large_tasks, server));
  server.FinishRound();

  // Columns 0..1: small (1.0) + large (0.5); columns 2..7: large only.
  EXPECT_NEAR(server.table(2)(0, 0) - before_l(0, 0), 1.5, 1e-12);
  EXPECT_NEAR(server.table(2)(0, 1) - before_l(0, 1), 1.5, 1e-12);
  EXPECT_NEAR(server.table(2)(0, 3) - before_l(0, 3), 0.5, 1e-12);
  EXPECT_NEAR(server.table(2)(0, 7) - before_l(0, 7), 0.5, 1e-12);
  // Small and medium tables get their slices.
  EXPECT_NEAR(server.table(0)(5, 1), before_l(5, 1) + 1.5, 1e-12);
  EXPECT_NEAR(server.table(1)(5, 3), before_l(5, 3) + 0.5, 1e-12);
}

TEST(HeteroServerTest, PaddedMeanAggregationNormalizesPerSegment) {
  auto opt = BaseOptions(true, AggregationMode::kMean);
  HeteroServer server(opt);
  Matrix before_l = server.table(2);

  server.BeginRound();
  auto small_tasks = TasksUpTo(0, opt.widths);
  auto large_tasks = TasksUpTo(2, opt.widths);
  // Three small clients (delta 1.0) + one large (delta 0.5).
  for (int i = 0; i < 3; ++i) {
    server.Accumulate(small_tasks, MakeUpdate(2, 1.0, small_tasks, server));
  }
  server.Accumulate(large_tasks, MakeUpdate(8, 0.5, large_tasks, server));
  server.FinishRound();

  // Segment [0,2): (3*1.0 + 0.5)/4 contributors = 0.875.
  EXPECT_NEAR(server.table(2)(0, 0) - before_l(0, 0), 0.875, 1e-12);
  // Segment [2,8): only the large client -> 0.5/1.
  EXPECT_NEAR(server.table(2)(0, 5) - before_l(0, 5), 0.5, 1e-12);
}

TEST(HeteroServerTest, Eq10InvariantUnderPaddedAggregation) {
  // After any number of padded aggregation rounds (without distillation),
  // the prefix identity Vs = Vm[:Ns] = Vl[:Ns] must persist.
  auto opt = BaseOptions(true, AggregationMode::kMean);
  HeteroServer server(opt);
  Rng rng(5);
  for (int round = 0; round < 4; ++round) {
    server.BeginRound();
    for (int c = 0; c < 5; ++c) {
      size_t group = rng.UniformInt(3);
      auto tasks = TasksUpTo(group, opt.widths);
      auto update = MakeUpdate(opt.widths[group], rng.Uniform(-1, 1), tasks,
                               server);
      server.Accumulate(tasks, update);
    }
    server.FinishRound();
    for (size_t r = 0; r < kItems; ++r) {
      for (size_t c = 0; c < 2; ++c) {
        EXPECT_DOUBLE_EQ(server.table(0)(r, c), server.table(1)(r, c));
        EXPECT_DOUBLE_EQ(server.table(0)(r, c), server.table(2)(r, c));
      }
      for (size_t c = 2; c < 4; ++c) {
        EXPECT_DOUBLE_EQ(server.table(1)(r, c), server.table(2)(r, c));
      }
    }
  }
}

TEST(HeteroServerTest, ClusteredAggregationIsolatesSlots) {
  auto opt = BaseOptions(/*shared=*/false, AggregationMode::kSum);
  HeteroServer server(opt);
  Matrix before_s = server.table(0);
  Matrix before_l = server.table(2);

  server.BeginRound();
  std::vector<LocalTaskSpec> small_tasks = {{0, 2}};
  server.Accumulate(small_tasks, MakeUpdate(2, 1.0, small_tasks, server));
  server.FinishRound();

  EXPECT_NEAR(server.table(0)(0, 0) - before_s(0, 0), 1.0, 1e-12);
  // Large table untouched: no cross-slot knowledge flow.
  for (size_t r = 0; r < kItems; ++r) {
    for (size_t c = 0; c < 8; ++c) {
      EXPECT_DOUBLE_EQ(server.table(2)(r, c), before_l(r, c));
    }
  }
}

TEST(HeteroServerTest, ThetaAggregatedPerSlot) {
  auto opt = BaseOptions(true, AggregationMode::kMean);
  HeteroServer server(opt);
  double theta_s_before = server.theta(0).weight(0)(0, 0);
  double theta_l_before = server.theta(2).weight(0)(0, 0);

  server.BeginRound();
  auto tasks = TasksUpTo(2, opt.widths);  // large client trains all three Θ
  auto update = MakeUpdate(8, 0.0, tasks, server);
  for (auto& d : update.theta_deltas) {
    d.weight(0)(0, 0) = 0.25;  // same delta into each Θ slot
  }
  server.Accumulate(tasks, update);
  server.FinishRound();

  EXPECT_NEAR(server.theta(0).weight(0)(0, 0) - theta_s_before, 0.25, 1e-12);
  EXPECT_NEAR(server.theta(2).weight(0)(0, 0) - theta_l_before, 0.25, 1e-12);
}

TEST(HeteroServerTest, EmptyRoundIsNoOp) {
  auto opt = BaseOptions(true, AggregationMode::kMean);
  HeteroServer server(opt);
  Matrix before = server.table(2);
  server.BeginRound();
  server.FinishRound();
  for (size_t i = 0; i < before.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(server.table(2).data()[i], before.data()[i]);
  }
}

TEST(HeteroServerTest, DistillBreaksPrefixTiesButKeepsShapes) {
  auto opt = BaseOptions();
  HeteroServer server(opt);
  DistillationOptions kd;
  kd.kd_items = kItems;
  kd.steps = 3;
  kd.lr = 0.1;
  Rng rng(7);
  double loss = server.Distill(kd, &rng);
  EXPECT_GE(loss, 0.0);
  EXPECT_EQ(server.table(0).cols(), 2u);
  EXPECT_EQ(server.table(2).cols(), 8u);
}

TEST(HeteroServerTest, SingleSlotDistillIsNoOp) {
  HeteroServer::Options opt;
  opt.widths = {4};
  opt.num_items = kItems;
  opt.seed = 9;
  HeteroServer server(opt);
  DistillationOptions kd;
  Rng rng(11);
  EXPECT_DOUBLE_EQ(server.Distill(kd, &rng), 0.0);
}

TEST(HeteroServerTest, SlotParamCountMatchesPaperExample) {
  // Paper §V-F: on ML, Vs/Vm/Vl have 29648 / 59296 / 118592 parameters
  // (3706 items x 8/16/32 dims).
  HeteroServer::Options opt;
  opt.widths = {8, 16, 32};
  opt.num_items = 3706;
  opt.seed = 1;
  HeteroServer server(opt);
  EXPECT_EQ(server.table(0).size(), 29648u);
  EXPECT_EQ(server.table(1).size(), 59296u);
  EXPECT_EQ(server.table(2).size(), 118592u);
  EXPECT_EQ(server.SlotParamCount(0),
            29648u + server.theta(0).ParamCount());
}

}  // namespace
}  // namespace hetefedrec
