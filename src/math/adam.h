// Adam optimizer (Kingma & Ba, 2015) over Matrix parameters.
//
// Clients run Adam locally (the paper's optimizer, lr = 0.001); the server
// applies aggregated *updates*, not Adam, per Eq. 4/9.
#ifndef HETEFEDREC_MATH_ADAM_H_
#define HETEFEDREC_MATH_ADAM_H_

#include "src/math/matrix.h"

namespace hetefedrec {

/// Hyper-parameters for Adam; defaults follow the original paper.
struct AdamOptions {
  double lr = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

/// \brief Per-parameter Adam state (first/second moments + step count).
///
/// One `Adam` instance owns the state for exactly one Matrix-shaped
/// parameter. State is created lazily on the first `Step` so the class can
/// be declared before parameter shapes are known.
class Adam {
 public:
  explicit Adam(AdamOptions options = {}) : options_(options) {}

  /// Applies one Adam update: param -= lr * mhat / (sqrt(vhat) + eps).
  /// Shapes of `param` and `grad` must match across all calls.
  void Step(Matrix* param, const Matrix& grad);

  /// Resets moments and the step counter (used when a client receives fresh
  /// global parameters at the start of a round).
  void Reset();

  const AdamOptions& options() const { return options_; }
  long long step_count() const { return t_; }

 private:
  AdamOptions options_;
  Matrix m_;
  Matrix v_;
  long long t_ = 0;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_ADAM_H_
