#include "src/util/logging.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>

namespace hetefedrec {
namespace {

/// Restores the process log level after each test so ordering between
/// tests in this binary never matters.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }

 private:
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, ParseLogLevelNames) {
  LogLevel out = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &out));
  EXPECT_EQ(out, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &out));
  EXPECT_EQ(out, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warning", &out));
  EXPECT_EQ(out, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &out));
  EXPECT_EQ(out, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &out));
  EXPECT_EQ(out, LogLevel::kError);
}

TEST_F(LoggingTest, ParseLogLevelIsCaseInsensitive) {
  LogLevel out = LogLevel::kDebug;
  EXPECT_TRUE(ParseLogLevel("WARNING", &out));
  EXPECT_EQ(out, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("Error", &out));
  EXPECT_EQ(out, LogLevel::kError);
}

TEST_F(LoggingTest, ParseLogLevelNumeric) {
  LogLevel out = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("0", &out));
  EXPECT_EQ(out, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("3", &out));
  EXPECT_EQ(out, LogLevel::kError);
}

TEST_F(LoggingTest, ParseLogLevelRejectsBadValuesUntouched) {
  LogLevel out = LogLevel::kWarning;
  EXPECT_FALSE(ParseLogLevel("bogus", &out));
  EXPECT_FALSE(ParseLogLevel("", &out));
  EXPECT_FALSE(ParseLogLevel("4", &out));
  EXPECT_FALSE(ParseLogLevel("infoo", &out));
  EXPECT_EQ(out, LogLevel::kWarning);  // failed parses leave *out alone
}

TEST_F(LoggingTest, SetAndGetLogLevelRoundTrip) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, MinLevelFiltersLowerSeverities) {
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  HFR_LOG(Debug) << "filtered debug";
  HFR_LOG(Info) << "filtered info";
  HFR_LOG(Warning) << "kept warning";
  HFR_LOG(Error) << "kept error";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("filtered debug"), std::string::npos);
  EXPECT_EQ(captured.find("filtered info"), std::string::npos);
  EXPECT_NE(captured.find("kept warning"), std::string::npos);
  EXPECT_NE(captured.find("kept error"), std::string::npos);
}

TEST_F(LoggingTest, PrefixHasTimestampLevelAndThreadId) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  HFR_LOG(Info) << "hello telemetry";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  // "[2026-08-07T12:00:00.123Z INFO t0] hello telemetry"
  const std::regex line(
      R"(\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z INFO t\d+\] )"
      R"(hello telemetry\n)");
  EXPECT_TRUE(std::regex_search(captured, line)) << captured;
}

}  // namespace
}  // namespace hetefedrec
