// Server-side bookkeeping of one client's cached row state.
//
// Under delta sync the server must know, per client, which rows the client
// already holds and at which version, so each participation ships only the
// subscribed rows whose version advanced. A `ClientReplica` is exactly that
// record: (slot, row → held version), plus — optionally, for verification —
// the row bytes the client would hold, so tests can assert the protocol is
// lossless (a row the server decides not to ship must be bit-identical to
// the live table).
//
// Memory is proportional to the rows the client has ever subscribed to
// (its interacted items + sampled negatives), not the catalogue.
#ifndef HETEFEDREC_FED_SYNC_REPLICA_H_
#define HETEFEDREC_FED_SYNC_REPLICA_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hetefedrec {

/// \brief One client's cached (row → version [, values]) state.
class ClientReplica {
 public:
  /// Sentinel "never shipped" version; any real version compares newer.
  static constexpr uint64_t kNeverHeld = ~uint64_t{0};

  /// Model slot this replica mirrors, or npos before the first sync.
  static constexpr size_t kNoSlot = ~size_t{0};
  size_t slot() const { return slot_; }
  void set_slot(size_t slot) { slot_ = slot; }

  size_t rows_held() const { return held_.size(); }

  /// Version the client holds for `row`, or kNeverHeld.
  uint64_t HeldVersion(uint32_t row) const {
    auto it = held_.find(row);
    return it == held_.end() ? kNeverHeld : it->second;
  }

  bool IsStale(uint32_t row, uint64_t current_version) const {
    const uint64_t held = HeldVersion(row);
    return held == kNeverHeld || held < current_version;
  }

  /// Records that the client now holds `row` at `version`.
  void Hold(uint32_t row, uint64_t version) { held_[row] = version; }

  /// Records the shipped bytes (verification mode only).
  void HoldValues(uint32_t row, const double* data, size_t width);

  /// Cached bytes for `row`, nullptr if values are not tracked for it.
  const double* Values(uint32_t row, size_t width) const;

  /// Drops everything — the client behaves as a first-time participant.
  void Invalidate();

 private:
  size_t slot_ = kNoSlot;
  std::unordered_map<uint32_t, uint64_t> held_;
  // Verification mode: row → offset into values_ (rows never shrink).
  std::unordered_map<uint32_t, size_t> value_pos_;
  std::vector<double> values_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_SYNC_REPLICA_H_
