// Parameter initialization schemes.
#ifndef HETEFEDREC_MATH_INIT_H_
#define HETEFEDREC_MATH_INIT_H_

#include "src/math/matrix.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// Fills `m` with N(0, stddev^2) entries.
void InitNormal(Matrix* m, double stddev, Rng* rng);

/// Xavier/Glorot uniform init U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
void InitXavierUniform(Matrix* m, size_t fan_in, size_t fan_out, Rng* rng);

/// Xavier for a weight matrix with shape (fan_in, fan_out) taken from its
/// own dimensions.
void InitXavierUniform(Matrix* m, Rng* rng);

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_INIT_H_
