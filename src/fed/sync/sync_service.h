// Row-subscription delta downloads (docs/SYNC.md).
//
// Protocol, per participating client per round:
//   1. The client announces its subscription — the rows it will read this
//      round (interacted items, the freshly drawn negative-candidate pool,
//      DDR sample rows, validation items) — together with the versions it
//      already holds (tracked server-side in its ClientReplica).
//   2. The server ships only the subscribed rows whose version advanced
//      since the client last held them, plus the (tiny, always-fresh) Θ
//      and a round header.
//   3. The replica record is updated to the shipped versions.
//
// `params_down` therefore scales with the client's data instead of the
// catalogue: shipped_rows × (width + 1 index) + |Θ| + 1, against the dense
// protocol's num_items × width + |Θ|.
//
// The simulation's clients read the live server table directly (the
// copy-on-write overlay in LocalTrainer), so delta sync changes no
// arithmetic — it is the bookkeeping a real deployment would need, and in
// `verify_values` mode it *proves* losslessness every round: any subscribed
// row the server decides not to ship is checked bit-identical against the
// replica's cached bytes.
#ifndef HETEFEDREC_FED_SYNC_SYNC_SERVICE_H_
#define HETEFEDREC_FED_SYNC_SYNC_SERVICE_H_

#include <cstdint>
#include <vector>

#include "src/data/types.h"
#include "src/fed/sync/replica.h"
#include "src/fed/sync/versioned_table.h"
#include "src/math/matrix.h"

namespace hetefedrec {

/// \brief What one delta download ships.
struct SyncPlan {
  size_t subscribed_rows = 0;  // rows the client asked for
  size_t shipped_rows = 0;     // subset that was stale (or never held)
  /// Scalars shipped down: shipped_rows × (width + 1) + theta_params + 1
  /// round-header scalar.
  size_t params = 0;
};

/// \brief Owns every client's replica and computes per-round deltas.
class SyncService {
 public:
  struct Options {
    /// Track shipped row bytes per replica and CHECK that every skipped
    /// (up-to-date) subscribed row is bit-identical to the live server row.
    /// O(rows held × width) memory per client — for tests and audits.
    bool verify_values = false;
    /// Per-client LRU cap on replica rows (0 = unlimited). Evicted rows
    /// read as never held and are simply re-shipped on the next
    /// subscription, so the protocol stays lossless; `params_down` rises
    /// with the miss rate (ExperimentConfig::sync_replica_cap).
    size_t replica_cap = 0;
  };

  explicit SyncService(size_t num_users);
  SyncService(size_t num_users, const Options& options);

  /// Plans and commits the download for client `u` reading `subscription`
  /// rows of `table` (the client's slot). `subscription` must be
  /// duplicate-free; order is irrelevant. Thread-compatible only under
  /// external serialization — call in deterministic merge order.
  SyncPlan Sync(UserId u, size_t slot,
                const std::vector<uint32_t>& subscription,
                const Matrix& table, const VersionView& versions,
                size_t theta_params);

  /// Scalars the dense protocol would ship for the same download.
  static size_t FullDownloadParams(const Matrix& table, size_t theta_params) {
    return table.size() + theta_params;
  }

  /// Drops one client's replica (it re-downloads everything next round).
  void Invalidate(UserId u);

  const ClientReplica& replica(UserId u) const;

  /// Mutable replica access for run-checkpoint restore.
  ClientReplica* mutable_replica(UserId u);

  size_t num_users() const { return replicas_.size(); }

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::vector<ClientReplica> replicas_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_SYNC_SYNC_SERVICE_H_
