// Feed-forward preference predictor (the paper's Θ).
//
// Architecture per §V-D: input [u, v] of size 2N, hidden layers [8, 8] with
// ReLU, and a single output logit (Eq. 5 applies the sigmoid; we keep logits
// and use BCE-with-logits for stability). One FeedForwardNet instance also
// serves as the gradient container for another of the same shape, which
// keeps aggregation code uniform (server sums Θ updates exactly like item
// embedding updates, Eq. 15).
//
// Templated on the working scalar: FeedForwardNet (double) is storage of
// record and the bit-identity reference; FeedForwardNetF (float) is the
// fp32 compute backend's client/eval copy, populated from a double net via
// AssignCastFrom at the conversion boundary (never the other way — theta
// deltas are upcast element-wise outside this class).
#ifndef HETEFEDREC_MODELS_FFN_H_
#define HETEFEDREC_MODELS_FFN_H_

#include <vector>

#include "src/math/adam.h"
#include "src/math/matrix.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief Multi-layer perceptron with ReLU hidden activations and a single
/// linear output (logit).
template <typename T>
class FeedForwardNetT {
 public:
  using Scalar = T;

  /// Empty network (no layers). Usable only after assignment.
  FeedForwardNetT() = default;

  /// \param input_dim size of the input vector (2N for NCF/LightGCN).
  /// \param hidden sizes of the hidden layers (paper: {8, 8}).
  FeedForwardNetT(size_t input_dim, std::vector<size_t> hidden);

  /// Xavier-uniform initialization of all weights; biases to zero.
  /// Double instantiation only — float nets are cast from double, never
  /// freshly initialized (the RNG stream is part of the fp64 contract).
  void InitXavier(Rng* rng);

  size_t input_dim() const { return input_dim_; }
  size_t num_layers() const { return weights_.size(); }

  /// Per-sample activations needed by Backward.
  struct Cache {
    AlignedVector<T> input;                    // copy of x
    std::vector<AlignedVector<T>> pre;         // pre-activation per layer
    std::vector<AlignedVector<T>> post;        // post-activation per layer
  };

  /// Batch-of-samples activations needed by BackwardBatch. Layout mirrors
  /// Cache with every buffer widened to `batch` packed rows.
  struct BatchCache {
    size_t batch = 0;
    AlignedVector<T> input;                    // batch x input_dim
    std::vector<AlignedVector<T>> pre;         // per layer, batch x width_l
    std::vector<AlignedVector<T>> post;        // per layer, batch x width_l
  };

  /// Computes the output logit for input `x` (length input_dim). If `cache`
  /// is non-null it is filled for a subsequent Backward call.
  T Forward(const T* x, Cache* cache) const;

  /// Pushes a batch x input_dim block through all layers at once via the
  /// blocked kernels of src/math/kernels.h, writing one logit per row into
  /// `logits`. For T = double bit-identical per row to Forward on that
  /// row. If `cache` is non-null it is filled for a subsequent
  /// BackwardBatch call.
  void ForwardBatch(const T* x, size_t batch, BatchCache* cache,
                    T* logits) const;

  /// Partial first-layer accumulators after consuming only x[0..split):
  /// acc[j] = bias0[j] + Σ_{i<split} x[i]·W0[i,j], ascending i (for
  /// T = double with exact-zero skip — the scalar layer-0 loop paused
  /// after `split` iterations; for T = float the same fmaf chain the fp32
  /// kernels resume). `acc` receives layer-0-width values. The scoring
  /// model's [pu, pv] input shares its user half across a whole batch of
  /// items, so this prefix is computed once per user and resumed per item.
  void ForwardPrefix(const T* x, size_t split, T* acc) const;

  /// ForwardBatch for rows sharing their first (input_dim - suffix_dim)
  /// input dims: resumes the layer-0 accumulation from `prefix` with each
  /// row's suffix (rows start `suffix_stride` scalars apart — pass an
  /// embedding table stride to score rows in place), then runs the
  /// remaining layers batched. For T = double bit-identical to
  /// ForwardBatch on the fully assembled rows. Evaluation only — no
  /// backward cache.
  void ForwardBatchFromPrefix(const T* prefix, const T* suffix, size_t batch,
                              size_t suffix_dim, size_t suffix_stride,
                              T* logits) const;

  /// Accumulates gradients into `grads` (a same-shape net) given
  /// dL/dlogit. If `dx` is non-null, writes dL/dx (length input_dim) —
  /// the path through which item/user embeddings receive gradient.
  void Backward(const Cache& cache, T dlogit, FeedForwardNetT* grads,
                T* dx) const;

  /// Batched Backward over a ForwardBatch cache and one dL/dlogit per row.
  /// Gradient sums accumulate in ascending sample order, so for T = double
  /// the result is bit-identical to calling Backward sample-by-sample in
  /// row order. If `dx` is non-null it receives the batch x input_dim
  /// input gradients.
  void BackwardBatch(const BatchCache& cache, const T* dlogits,
                     FeedForwardNetT* grads, T* dx) const;

  /// Zeroes all parameters (turns the net into a gradient accumulator).
  void SetZero();

  /// this += scale * other (same shape).
  void AddScaled(const FeedForwardNetT& other, T scale);

  /// Total number of scalar parameters (Table III accounting).
  size_t ParamCount() const;

  /// Largest |parameter| across all layers.
  T MaxAbs() const;

  /// Same-shape zero-initialized copy (gradient accumulator factory).
  static FeedForwardNetT ZerosLike(const FeedForwardNetT& other);

  /// True when every layer of `other` has identical dimensions.
  bool SameShape(const FeedForwardNetT& other) const;

  /// Cast-assigns shape and parameters from the other scalar width — the
  /// fp32 backend's download boundary (double server theta → float working
  /// copy).
  template <typename U>
  void AssignCastFrom(const FeedForwardNetT<U>& other) {
    input_dim_ = other.input_dim();
    weights_.resize(other.num_layers());
    biases_.resize(other.num_layers());
    for (size_t l = 0; l < weights_.size(); ++l) {
      weights_[l].AssignCast(other.weight(l));
      biases_[l].AssignCast(other.bias(l));
    }
  }

  /// Layer parameter access (weights[l] is in x out; biases[l] is 1 x out).
  const MatrixT<T>& weight(size_t l) const { return weights_[l]; }
  MatrixT<T>& weight(size_t l) { return weights_[l]; }
  const MatrixT<T>& bias(size_t l) const { return biases_[l]; }
  MatrixT<T>& bias(size_t l) { return biases_[l]; }

 private:
  size_t input_dim_ = 0;
  std::vector<MatrixT<T>> weights_;
  std::vector<MatrixT<T>> biases_;
};

using FeedForwardNet = FeedForwardNetT<double>;
using FeedForwardNetF = FeedForwardNetT<float>;

extern template class FeedForwardNetT<double>;
extern template class FeedForwardNetT<float>;

/// \brief Adam optimizer state spanning all layers of a FeedForwardNetT.
template <typename T>
class FfnAdamT {
 public:
  explicit FfnAdamT(AdamOptions options = {}) : options_(options) {}

  /// One Adam step per layer; `grads` must have the same shape as `net`.
  void Step(FeedForwardNetT<T>* net, const FeedForwardNetT<T>& grads);

  /// Drops all moment state.
  void Reset();

  /// Sum of per-layer skipped steps (non-finite gradients, see Adam).
  long long skipped_steps() const;

 private:
  AdamOptions options_;
  std::vector<AdamT<T>> weight_state_;
  std::vector<AdamT<T>> bias_state_;
};

using FfnAdam = FfnAdamT<double>;
using FfnAdamF = FfnAdamT<float>;

extern template class FfnAdamT<double>;
extern template class FfnAdamT<float>;

}  // namespace hetefedrec

#endif  // HETEFEDREC_MODELS_FFN_H_
