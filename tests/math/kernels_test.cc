// The batched micro-kernels must be bit-identical to their scalar
// reference loops — batching regroups independent accumulator targets but
// never the additions into one target. EXPECT_EQ on doubles is deliberate.
#include "src/math/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/math/backend.h"
#include "src/math/init.h"
#include "src/math/kernels_fp32.h"
#include "src/util/rng.h"

namespace hetefedrec {
namespace {

std::vector<double> RandomBlock(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Normal(0.0, 0.3);
  return v;
}

// The scalar FFN-layer loop (ffn.cc's original Forward body).
void ScalarGemv(const double* x, size_t in_dim, const double* w,
                const double* bias, size_t out_dim, double* out) {
  for (size_t j = 0; j < out_dim; ++j) out[j] = bias[j];
  for (size_t i = 0; i < in_dim; ++i) {
    double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < out_dim; ++j) out[j] += xi * w[i * out_dim + j];
  }
}

TEST(GemvBatchBiasedTest, BitIdenticalToPerSampleGemv) {
  // Batch sizes straddle the kKernelRowBlock boundary.
  for (size_t batch : {size_t{1}, size_t{7}, size_t{31}, size_t{32},
                       size_t{33}, size_t{100}}) {
    for (size_t in_dim : {size_t{5}, size_t{16}, size_t{64}}) {
      const size_t out_dim = 8;
      std::vector<double> x = RandomBlock(batch * in_dim, 1 + batch);
      std::vector<double> w = RandomBlock(in_dim * out_dim, 2 + in_dim);
      std::vector<double> bias = RandomBlock(out_dim, 3);
      // Exercise the zero-skip path.
      for (size_t t = 0; t < x.size(); t += 3) x[t] = 0.0;

      std::vector<double> batched(batch * out_dim);
      GemvBatchBiased(x.data(), batch, in_dim, w.data(), bias.data(),
                      out_dim, batched.data());

      std::vector<double> ref(out_dim);
      for (size_t b = 0; b < batch; ++b) {
        ScalarGemv(x.data() + b * in_dim, in_dim, w.data(), bias.data(),
                   out_dim, ref.data());
        for (size_t j = 0; j < out_dim; ++j) {
          ASSERT_EQ(batched[b * out_dim + j], ref[j])
              << "batch=" << batch << " b=" << b << " j=" << j;
        }
      }
    }
  }
}

TEST(AccumulateOuterBatchTest, BitIdenticalToSampleOrderAccumulation) {
  const size_t in_dim = 12, out_dim = 8;
  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
    std::vector<double> in = RandomBlock(batch * in_dim, 11 + batch);
    std::vector<double> delta = RandomBlock(batch * out_dim, 13 + batch);
    for (size_t t = 0; t < in.size(); t += 5) in[t] = 0.0;

    std::vector<double> gw(in_dim * out_dim, 0.25);
    std::vector<double> gb(out_dim, -0.5);
    std::vector<double> gw_ref = gw;
    std::vector<double> gb_ref = gb;

    AccumulateOuterBatch(in.data(), delta.data(), batch, in_dim, out_dim,
                         gw.data(), gb.data());

    for (size_t b = 0; b < batch; ++b) {
      const double* irow = in.data() + b * in_dim;
      const double* drow = delta.data() + b * out_dim;
      for (size_t j = 0; j < out_dim; ++j) gb_ref[j] += drow[j];
      for (size_t i = 0; i < in_dim; ++i) {
        if (irow[i] == 0.0) continue;
        for (size_t j = 0; j < out_dim; ++j) {
          gw_ref[i * out_dim + j] += irow[i] * drow[j];
        }
      }
    }
    for (size_t t = 0; t < gw.size(); ++t) ASSERT_EQ(gw[t], gw_ref[t]);
    for (size_t t = 0; t < gb.size(); ++t) ASSERT_EQ(gb[t], gb_ref[t]);
  }
}

TEST(GemvBatchTransposedTest, BitIdenticalToPerSampleDots) {
  const size_t in_dim = 16, out_dim = 8;
  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
    std::vector<double> delta = RandomBlock(batch * out_dim, 17 + batch);
    std::vector<double> w = RandomBlock(in_dim * out_dim, 19);
    std::vector<double> dx(batch * in_dim);
    GemvBatchTransposed(delta.data(), batch, out_dim, w.data(), in_dim,
                        dx.data());
    for (size_t b = 0; b < batch; ++b) {
      for (size_t i = 0; i < in_dim; ++i) {
        double acc = 0.0;
        for (size_t j = 0; j < out_dim; ++j) {
          acc += w[i * out_dim + j] * delta[b * out_dim + j];
        }
        ASSERT_EQ(dx[b * in_dim + i], acc) << "b=" << b << " i=" << i;
      }
    }
  }
}

TEST(GramMatrixTest, BitIdenticalToPairwiseDot) {
  // k straddles the tile size; includes an all-zero row.
  for (size_t k : {size_t{1}, size_t{7}, size_t{33}, size_t{70}}) {
    const size_t n = 24;
    std::vector<double> x = RandomBlock(k * n, 23 + k);
    if (k > 2) std::fill(x.begin() + n, x.begin() + 2 * n, 0.0);
    Matrix gram(k, k);
    GramMatrix(x.data(), k, n, &gram);
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = 0; b < k; ++b) {
        ASSERT_EQ(gram(a, b), Dot(x.data() + a * n, x.data() + b * n, n))
            << "k=" << k << " a=" << a << " b=" << b;
      }
    }
  }
}

// --- fp32 backend: accuracy bounds against fp64 ---------------------------
//
// The float kernels are NOT bit-comparable to double (fused multiply-adds,
// no zero skip, tree reductions), so these tests bound the drift instead:
// for inputs cast from the double block, every fp32 output must stay within
// a mixed absolute/relative envelope of the fp64 reference. The envelope is
// sized for <= a few hundred accumulated terms of O(0.3) magnitude — loose
// enough to never flake, tight enough that an algorithmic error (wrong
// element, missed term, unreduced lane) fails by orders of magnitude.
constexpr double kFp32Tol = 1e-4;

void ExpectClose(float got, double want, const char* what, size_t idx) {
  EXPECT_LE(std::fabs(static_cast<double>(got) - want),
            kFp32Tol * (1.0 + std::fabs(want)))
      << what << " idx=" << idx << " fp32=" << got << " fp64=" << want;
}

std::vector<float> Cast(const std::vector<double>& v) {
  return std::vector<float>(v.begin(), v.end());
}

TEST(Fp32AccuracyTest, DotWithinTolerance) {
  for (size_t n : {size_t{1}, size_t{7}, size_t{8}, size_t{37}, size_t{64},
                   size_t{129}}) {
    std::vector<double> a = RandomBlock(n, 101 + n);
    std::vector<double> b = RandomBlock(n, 103 + n);
    std::vector<float> af = Cast(a), bf = Cast(b);
    ExpectClose(Dot(af.data(), bf.data(), n), Dot(a.data(), b.data(), n),
                "Dot", n);
    ExpectClose(Norm2(af.data(), n), Norm2(a.data(), n), "Norm2", n);
    ExpectClose(CosineSimilarity(af.data(), bf.data(), n),
                CosineSimilarity(a.data(), b.data(), n), "Cosine", n);
  }
}

TEST(Fp32AccuracyTest, AxpyWithinTolerance) {
  const size_t n = 67;
  std::vector<double> x = RandomBlock(n, 107);
  std::vector<double> y = RandomBlock(n, 109);
  std::vector<float> xf = Cast(x), yf = Cast(y);
  Axpy(0.37, x.data(), y.data(), n);
  Axpy(0.37f, xf.data(), yf.data(), n);
  for (size_t i = 0; i < n; ++i) ExpectClose(yf[i], y[i], "Axpy", i);
}

TEST(Fp32AccuracyTest, GemvBatchBiasedWithinTolerance) {
  for (size_t batch : {size_t{1}, size_t{33}}) {
    for (size_t in_dim : {size_t{5}, size_t{64}}) {
      const size_t out_dim = 8;
      std::vector<double> x = RandomBlock(batch * in_dim, 211 + batch);
      std::vector<double> w = RandomBlock(in_dim * out_dim, 223 + in_dim);
      std::vector<double> bias = RandomBlock(out_dim, 227);
      std::vector<double> out(batch * out_dim);
      GemvBatchBiased(x.data(), batch, in_dim, w.data(), bias.data(), out_dim,
                      out.data());
      std::vector<float> xf = Cast(x), wf = Cast(w), bf = Cast(bias);
      std::vector<float> outf(batch * out_dim);
      GemvBatchBiased(xf.data(), batch, in_dim, wf.data(), bf.data(), out_dim,
                      outf.data());
      for (size_t t = 0; t < out.size(); ++t) {
        ExpectClose(outf[t], out[t], "GemvBatchBiased", t);
      }
    }
  }
}

TEST(Fp32AccuracyTest, AccumulateOuterBatchWithinTolerance) {
  const size_t batch = 64, in_dim = 12, out_dim = 8;
  std::vector<double> in = RandomBlock(batch * in_dim, 229);
  std::vector<double> delta = RandomBlock(batch * out_dim, 233);
  std::vector<double> gw(in_dim * out_dim, 0.25), gb(out_dim, -0.5);
  std::vector<float> inf = Cast(in), deltaf = Cast(delta);
  std::vector<float> gwf = Cast(gw), gbf = Cast(gb);
  AccumulateOuterBatch(in.data(), delta.data(), batch, in_dim, out_dim,
                       gw.data(), gb.data());
  AccumulateOuterBatch(inf.data(), deltaf.data(), batch, in_dim, out_dim,
                       gwf.data(), gbf.data());
  for (size_t t = 0; t < gw.size(); ++t) {
    ExpectClose(gwf[t], gw[t], "AccumulateOuterBatch.gw", t);
  }
  for (size_t t = 0; t < gb.size(); ++t) {
    ExpectClose(gbf[t], gb[t], "AccumulateOuterBatch.gb", t);
  }
}

TEST(Fp32AccuracyTest, GemvBatchTransposedWithinTolerance) {
  const size_t batch = 33, in_dim = 16, out_dim = 8;
  std::vector<double> delta = RandomBlock(batch * out_dim, 239);
  std::vector<double> w = RandomBlock(in_dim * out_dim, 241);
  std::vector<double> dx(batch * in_dim);
  GemvBatchTransposed(delta.data(), batch, out_dim, w.data(), in_dim,
                      dx.data());
  std::vector<float> deltaf = Cast(delta), wf = Cast(w);
  std::vector<float> dxf(batch * in_dim);
  GemvBatchTransposed(deltaf.data(), batch, out_dim, wf.data(), in_dim,
                      dxf.data());
  for (size_t t = 0; t < dx.size(); ++t) {
    ExpectClose(dxf[t], dx[t], "GemvBatchTransposed", t);
  }
}

TEST(Fp32AccuracyTest, GramMatrixWithinTolerance) {
  const size_t k = 33, n = 24;
  std::vector<double> x = RandomBlock(k * n, 251);
  Matrix gram(k, k);
  GramMatrix(x.data(), k, n, &gram);
  std::vector<float> xf = Cast(x);
  MatrixF gramf(k, k);
  GramMatrix(xf.data(), k, n, &gramf);
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = 0; b < k; ++b) {
      ExpectClose(gramf(a, b), gram(a, b), "GramMatrix", a * k + b);
    }
  }
}

// --- fp32 dispatch: scalar fallback == AVX2, bit for bit -------------------
//
// The portable scalar fp32 set emulates the vector code lane-for-lane
// (std::fmaf chains, the same 8→4→2→1 reduction tree), so on any input the
// two implementations must agree EXACTLY — this is what makes fp32 and
// fp32_simd results-identical and lets the SIMD toggle be results-inert.

std::vector<float> RandomFloats(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Normal(0.0, 0.3));
  return v;
}

#ifdef HFR_HAVE_AVX2_TU

TEST(Fp32DispatchTest, ScalarMatchesAvx2BitForBit) {
  if (!CpuSupportsFp32Simd()) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA";
  }
  // Lengths straddle every code-path boundary: pure tail (<8), exact
  // chunks, chunks + tail.
  for (size_t n : {size_t{1}, size_t{5}, size_t{8}, size_t{16}, size_t{37},
                   size_t{64}, size_t{129}}) {
    std::vector<float> a = RandomFloats(n, 301 + n);
    std::vector<float> b = RandomFloats(n, 307 + n);
    const float ds = fp32::DotScalar(a.data(), b.data(), n);
    const float dv = fp32::DotAvx2(a.data(), b.data(), n);
    EXPECT_EQ(ds, dv) << "Dot n=" << n;

    std::vector<float> ys = a, yv = a;
    fp32::AxpyScalar(0.37f, b.data(), ys.data(), n);
    fp32::AxpyAvx2(0.37f, b.data(), yv.data(), n);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(ys[i], yv[i]) << "Axpy " << i;
  }

  const size_t batch = 33, in_dim = 19, out_dim = 8;
  std::vector<float> x = RandomFloats(batch * in_dim, 311);
  std::vector<float> w = RandomFloats(in_dim * out_dim, 313);
  std::vector<float> init = RandomFloats(out_dim, 317);
  std::vector<float> outs(batch * out_dim), outv(batch * out_dim);
  fp32::GemvBatchResumeScalar(x.data(), batch, in_dim, in_dim, w.data(),
                              init.data(), out_dim, outs.data());
  fp32::GemvBatchResumeAvx2(x.data(), batch, in_dim, in_dim, w.data(),
                            init.data(), out_dim, outv.data());
  for (size_t t = 0; t < outs.size(); ++t) {
    EXPECT_EQ(outs[t], outv[t]) << "GemvBatchResume " << t;
  }

  std::vector<float> delta = RandomFloats(batch * out_dim, 331);
  std::vector<float> gws(in_dim * out_dim, 0.25f), gbs(out_dim, -0.5f);
  std::vector<float> gwv = gws, gbv = gbs;
  fp32::AccumulateOuterBatchScalar(x.data(), delta.data(), batch, in_dim,
                                   out_dim, gws.data(), gbs.data());
  fp32::AccumulateOuterBatchAvx2(x.data(), delta.data(), batch, in_dim,
                                 out_dim, gwv.data(), gbv.data());
  for (size_t t = 0; t < gws.size(); ++t) {
    EXPECT_EQ(gws[t], gwv[t]) << "AccumulateOuterBatch.gw " << t;
  }
  for (size_t t = 0; t < gbs.size(); ++t) {
    EXPECT_EQ(gbs[t], gbv[t]) << "AccumulateOuterBatch.gb " << t;
  }

  std::vector<float> dxs(batch * in_dim), dxv(batch * in_dim);
  fp32::GemvBatchTransposedScalar(delta.data(), batch, out_dim, w.data(),
                                  in_dim, dxs.data());
  fp32::GemvBatchTransposedAvx2(delta.data(), batch, out_dim, w.data(),
                                in_dim, dxv.data());
  for (size_t t = 0; t < dxs.size(); ++t) {
    EXPECT_EQ(dxs[t], dxv[t]) << "GemvBatchTransposed " << t;
  }
}

TEST(Fp32DispatchTest, RuntimeToggleIsResultsInert) {
  if (!CpuSupportsFp32Simd()) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA";
  }
  // The public entry points under both switch positions: same bits.
  const bool saved = Fp32SimdEnabled();
  const size_t n = 100;
  std::vector<float> a = RandomFloats(n, 401);
  std::vector<float> b = RandomFloats(n, 403);
  SetFp32SimdEnabled(false);
  const float scalar_dot = Dot(a.data(), b.data(), n);
  MatrixF gram_scalar(4, 4);
  GramMatrix(a.data(), 4, 25, &gram_scalar);
  SetFp32SimdEnabled(true);
  const float simd_dot = Dot(a.data(), b.data(), n);
  MatrixF gram_simd(4, 4);
  GramMatrix(a.data(), 4, 25, &gram_simd);
  SetFp32SimdEnabled(saved);
  EXPECT_EQ(scalar_dot, simd_dot);
  for (size_t t = 0; t < gram_scalar.data().size(); ++t) {
    EXPECT_EQ(gram_scalar.data()[t], gram_simd.data()[t]);
  }
}

#endif  // HFR_HAVE_AVX2_TU

TEST(Fp32DispatchTest, ActivateBackendFallsBackGracefully) {
  const bool saved = Fp32SimdEnabled();
  // fp64 and fp32 never arm the SIMD switch; fp32_simd arms it exactly
  // when the build + CPU can honor it (and reports which happened).
  EXPECT_TRUE(ActivateBackend(ComputeBackend::kFp64));
  EXPECT_FALSE(Fp32SimdEnabled());
  EXPECT_TRUE(ActivateBackend(ComputeBackend::kFp32));
  EXPECT_FALSE(Fp32SimdEnabled());
  const bool armed = ActivateBackend(ComputeBackend::kFp32Simd);
  EXPECT_EQ(armed, CpuSupportsFp32Simd());
  EXPECT_EQ(Fp32SimdEnabled(), CpuSupportsFp32Simd());
  ActivateBackend(ComputeBackend::kFp64);
  SetFp32SimdEnabled(saved);
}

TEST(AlignedStorageTest, MatrixAndKernelBlocksAre32ByteAligned) {
  // The AVX2 kernels load 8-lane vectors straight out of Matrix rows and
  // block scratch; AlignedVector must put every buffer on a 32-byte
  // boundary regardless of shape.
  for (size_t rows : {size_t{1}, size_t{7}, size_t{33}}) {
    Matrix m(rows, 5);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data().data()) % kSimdAlign, 0u);
    MatrixF f(rows, 5);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(f.data().data()) % kSimdAlign, 0u);
  }
  AlignedVector<float> scratch;
  scratch.resize(1000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(scratch.data()) % kSimdAlign, 0u);
}

}  // namespace
}  // namespace hetefedrec
