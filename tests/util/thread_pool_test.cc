#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace hetefedrec {
namespace {

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  EXPECT_EQ(pool.num_slots(), 1u);
  std::vector<int> out(10, 0);
  pool.ParallelFor(10, [&](size_t i, size_t slot) {
    EXPECT_EQ(slot, 0u);
    out[i] = static_cast<int>(i);
  });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_slots(), 4u);
  constexpr size_t kN = 5000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i, size_t slot) {
    ASSERT_LT(slot, 4u);
    counts[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long long> sum{0};
    pool.ParallelFor(100, [&](size_t i, size_t) {
      sum.fetch_add(static_cast<long long>(i));
    });
    EXPECT_EQ(sum.load(), 99LL * 100 / 2);
  }
}

TEST(ThreadPoolTest, EmptyLoopIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PerSlotScratchIsRaceFree) {
  // The federated round loop pattern: each slot owns scratch, results
  // merge deterministically by index afterwards.
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<double> results(kN, 0.0);
  std::vector<std::vector<double>> scratch(pool.num_slots());
  pool.ParallelFor(kN, [&](size_t i, size_t slot) {
    auto& s = scratch[slot];
    s.assign(8, static_cast<double>(i));
    results[i] = std::accumulate(s.begin(), s.end(), 0.0);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(results[i], 8.0 * static_cast<double>(i));
  }
}

}  // namespace
}  // namespace hetefedrec
