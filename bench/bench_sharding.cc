// Sharded-server scale-out: rounds/wall-second and bytes/round per shard
// count under the streaming million-user workload (docs/SYNC.md
// "Sharding").
//
// For each S in {1, 2, 4, 8} the bench streams `--users` power-law clients
// (default 1M — nothing is materialized per user) through the round loop
// against a `ShardedServer` with S item-range shards, reporting round
// throughput, upload bytes/round, the per-shard upload balance under the
// Zipf-head item skew, and process peak RSS. Every S run replays the same
// seeds, and the final tables are checked bit-identical to the S=1 run —
// the shard count changes memory layout and accounting, never arithmetic
// (the merge-order contract pinned by tests/core/sharding_equivalence_test).
//
// Acceptance (ISSUE 9): the 1M-client run completes for every S with peak
// RSS under --max_rss_mb, and all S > 1 tables match S=1 bit-for-bit.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/data/stream.h"
#include "src/fed/shard/sharded_server.h"
#include "src/fed/shard/stream_loop.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

int Main(int argc, char** argv) {
  CommandLine cli;
  cli.AddFlag("users", "1000000", "streamed clients");
  cli.AddFlag("items", "200000", "item catalogue size");
  cli.AddFlag("width", "32", "embedding width of the single slot");
  cli.AddFlag("clients_per_round", "256", "uploads merged per round");
  cli.AddFlag("rounds", "0",
              "rounds per shard count (0 = one full pass over --users)");
  cli.AddFlag("lr", "0.05", "client SGD step scale");
  cli.AddFlag("seed", "7", "stream + loop seed");
  cli.AddFlag("pop_exponent", "1.05", "Zipf item-popularity exponent");
  cli.AddFlag("size_exponent", "1.6", "Pareto client-size tail index");
  cli.AddFlag("max_rss_mb", "4096", "peak-RSS acceptance bound (MiB)");
  cli.AddFlag("metrics_out", "",
              "telemetry JSONL path for the S=4 run (\"\" = off)");
  cli.AddFlag("out_dir", ".", "CSV output directory");
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);

  StreamConfig scfg;
  scfg.num_users = cli.GetUint64("users");
  scfg.num_items = cli.GetUint64("items");
  scfg.popularity_exponent = cli.GetDouble("pop_exponent");
  scfg.size_exponent = cli.GetDouble("size_exponent");
  scfg.seed = cli.GetUint64("seed");
  const ClientStream stream(scfg);

  HeteroServer::Options sopts;
  sopts.widths = {static_cast<size_t>(cli.GetUint64("width"))};
  sopts.num_items = scfg.num_items;
  sopts.aggregation = AggregationMode::kMean;
  sopts.seed = cli.GetUint64("seed") + 1;

  StreamLoopOptions lopts;
  lopts.clients_per_round = cli.GetUint64("clients_per_round");
  lopts.rounds = cli.GetUint64("rounds");
  lopts.lr = cli.GetDouble("lr");
  lopts.seed = cli.GetUint64("seed") + 2;

  TablePrinter table(
      "Sharded server under the streaming power-law workload (width " +
          std::to_string(sopts.widths[0]) + ", " +
          TablePrinter::Count(static_cast<long long>(scfg.num_users)) +
          " clients, " +
          TablePrinter::Count(static_cast<long long>(scfg.num_items)) +
          " items)",
      {"Shards", "Rounds", "Clients", "Rounds/s", "MB/round", "Shard skew",
       "Peak RSS MB", "vs S=1"});

  const size_t max_rss_kb = cli.GetUint64("max_rss_mb") * 1024;
  std::vector<Matrix> s1_tables;
  bool all_identical = true;
  bool rss_ok = true;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    std::unique_ptr<ServerApi> server = MakeServer(sopts, shards);
    StreamLoopOptions run_opts = lopts;
    if (shards == 4) run_opts.metrics_out = cli.GetString("metrics_out");
    std::fprintf(stderr, "[sharding] S=%zu streaming...\n", shards);
    const StreamLoopResult r = RunStreamingRounds(server.get(), stream,
                                                  run_opts);

    // Per-shard balance: max over mean of upload scalars — the Zipf head
    // loads the low-id shard hardest.
    uint64_t max_scalars = 0;
    for (uint64_t v : r.shard_scalars) max_scalars = std::max(max_scalars, v);
    const double mean_scalars =
        static_cast<double>(r.upload_scalars) /
        static_cast<double>(r.shard_scalars.size());
    const double skew =
        mean_scalars > 0.0 ? static_cast<double>(max_scalars) / mean_scalars
                           : 1.0;

    // Bit-identity vs the S=1 run: same seeds, same workload, different
    // shard count — the final tables must match byte for byte.
    ServerSnapshot snap = server->Snapshot();
    std::string identical = "-";
    if (shards == 1) {
      s1_tables = std::move(snap.tables);
    } else {
      bool same = true;
      for (size_t s = 0; s < s1_tables.size() && same; ++s) {
        same = snap.tables[s].data() == s1_tables[s].data();
      }
      identical = same ? "identical" : "DIFFERS";
      all_identical = all_identical && same;
    }

    if (r.peak_rss_kb > max_rss_kb) rss_ok = false;
    const double rounds_per_sec =
        r.wall_seconds > 0.0 ? static_cast<double>(r.rounds) / r.wall_seconds
                             : 0.0;
    const double mb_per_round =
        static_cast<double>(r.upload_scalars) * sizeof(double) /
        (1024.0 * 1024.0) / static_cast<double>(r.rounds);
    table.AddRow({std::to_string(shards),
                  TablePrinter::Count(static_cast<long long>(r.rounds)),
                  TablePrinter::Count(static_cast<long long>(r.clients)),
                  TablePrinter::Num(rounds_per_sec, 1),
                  TablePrinter::Num(mb_per_round, 3),
                  TablePrinter::Num(skew, 3),
                  TablePrinter::Num(
                      static_cast<double>(r.peak_rss_kb) / 1024.0, 1),
                  identical});
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "sharding_scaleout"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());

  std::printf(
      "acceptance: %s clients streamed per shard count, bounded RSS "
      "(< %llu MB): %s; S>1 tables bit-identical to S=1: %s\n",
      TablePrinter::Count(static_cast<long long>(scfg.num_users)).c_str(),
      static_cast<unsigned long long>(cli.GetUint64("max_rss_mb")),
      rss_ok ? "PASS" : "FAIL", all_identical ? "PASS" : "FAIL");
  return rss_ok && all_identical ? 0 : 1;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
