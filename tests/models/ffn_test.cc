#include "src/models/ffn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/math/activations.h"
#include "src/util/rng.h"

namespace hetefedrec {
namespace {

FeedForwardNet MakeNet(size_t input_dim, uint64_t seed = 3) {
  FeedForwardNet net(input_dim, {8, 8});
  Rng rng(seed);
  net.InitXavier(&rng);
  return net;
}

TEST(FfnTest, ShapesFollowConstruction) {
  FeedForwardNet net(16, {8, 8});
  EXPECT_EQ(net.input_dim(), 16u);
  EXPECT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.weight(0).rows(), 16u);
  EXPECT_EQ(net.weight(0).cols(), 8u);
  EXPECT_EQ(net.weight(1).rows(), 8u);
  EXPECT_EQ(net.weight(2).cols(), 1u);
  EXPECT_EQ(net.bias(2).cols(), 1u);
}

TEST(FfnTest, ParamCountMatchesPaperFormula) {
  // [2N, 8, 8] -> 1 with biases: 2N*8 + 8 + 8*8 + 8 + 8*1 + 1.
  for (size_t n : {8u, 16u, 32u, 128u}) {
    FeedForwardNet net(2 * n, {8, 8});
    EXPECT_EQ(net.ParamCount(), 2 * n * 8 + 8 + 64 + 8 + 8 + 1);
  }
}

TEST(FfnTest, ForwardDeterministic) {
  FeedForwardNet net = MakeNet(6);
  std::vector<double> x = {0.1, -0.2, 0.3, 0.4, -0.5, 0.6};
  double a = net.Forward(x.data(), nullptr);
  double b = net.Forward(x.data(), nullptr);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(FfnTest, ZeroNetOutputsBias) {
  FeedForwardNet net(4, {8, 8});
  net.SetZero();
  net.bias(2)(0, 0) = 0.7;
  std::vector<double> x = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(net.Forward(x.data(), nullptr), 0.7);
}

TEST(FfnTest, CachePopulatedOnForward) {
  FeedForwardNet net = MakeNet(4);
  std::vector<double> x = {0.5, -0.5, 0.25, 1.0};
  FeedForwardNet::Cache cache;
  net.Forward(x.data(), &cache);
  EXPECT_EQ(cache.input.size(), 4u);
  EXPECT_EQ(cache.pre.size(), 3u);
  EXPECT_EQ(cache.post[0].size(), 8u);
  EXPECT_EQ(cache.post[2].size(), 1u);
}

// Finite-difference checks: for every weight, bias, and input coordinate,
// the analytic gradient of BCE(logit(x), y) must match the numeric one.
TEST(FfnTest, GradientMatchesFiniteDifferenceWeights) {
  FeedForwardNet net = MakeNet(5, 11);
  std::vector<double> x = {0.3, -0.7, 0.2, 0.9, -0.1};
  const double label = 1.0;
  const double h = 1e-6;

  FeedForwardNet::Cache cache;
  double logit = net.Forward(x.data(), &cache);
  FeedForwardNet grads = FeedForwardNet::ZerosLike(net);
  net.Backward(cache, BceWithLogitsGrad(logit, label), &grads, nullptr);

  for (size_t l = 0; l < net.num_layers(); ++l) {
    for (size_t r = 0; r < net.weight(l).rows(); ++r) {
      for (size_t c = 0; c < net.weight(l).cols(); ++c) {
        FeedForwardNet plus = net;
        plus.weight(l)(r, c) += h;
        FeedForwardNet minus = net;
        minus.weight(l)(r, c) -= h;
        double numeric =
            (BceWithLogits(plus.Forward(x.data(), nullptr), label) -
             BceWithLogits(minus.Forward(x.data(), nullptr), label)) /
            (2 * h);
        EXPECT_NEAR(grads.weight(l)(r, c), numeric, 1e-5)
            << "layer " << l << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST(FfnTest, GradientMatchesFiniteDifferenceBiases) {
  FeedForwardNet net = MakeNet(4, 13);
  std::vector<double> x = {0.4, 0.1, -0.6, 0.8};
  const double label = 0.0;
  const double h = 1e-6;

  FeedForwardNet::Cache cache;
  double logit = net.Forward(x.data(), &cache);
  FeedForwardNet grads = FeedForwardNet::ZerosLike(net);
  net.Backward(cache, BceWithLogitsGrad(logit, label), &grads, nullptr);

  for (size_t l = 0; l < net.num_layers(); ++l) {
    for (size_t c = 0; c < net.bias(l).cols(); ++c) {
      FeedForwardNet plus = net;
      plus.bias(l)(0, c) += h;
      FeedForwardNet minus = net;
      minus.bias(l)(0, c) -= h;
      double numeric =
          (BceWithLogits(plus.Forward(x.data(), nullptr), label) -
           BceWithLogits(minus.Forward(x.data(), nullptr), label)) /
          (2 * h);
      EXPECT_NEAR(grads.bias(l)(0, c), numeric, 1e-5);
    }
  }
}

TEST(FfnTest, GradientMatchesFiniteDifferenceInput) {
  FeedForwardNet net = MakeNet(6, 17);
  std::vector<double> x = {0.2, -0.3, 0.5, 0.7, -0.9, 0.1};
  const double label = 1.0;
  const double h = 1e-6;

  FeedForwardNet::Cache cache;
  double logit = net.Forward(x.data(), &cache);
  FeedForwardNet grads = FeedForwardNet::ZerosLike(net);
  std::vector<double> dx(6, 0.0);
  net.Backward(cache, BceWithLogitsGrad(logit, label), &grads, dx.data());

  for (size_t i = 0; i < x.size(); ++i) {
    std::vector<double> xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    double numeric = (BceWithLogits(net.Forward(xp.data(), nullptr), label) -
                      BceWithLogits(net.Forward(xm.data(), nullptr), label)) /
                     (2 * h);
    EXPECT_NEAR(dx[i], numeric, 1e-5) << "input " << i;
  }
}

TEST(FfnTest, BackwardAccumulates) {
  FeedForwardNet net = MakeNet(4, 19);
  std::vector<double> x = {0.1, 0.2, 0.3, 0.4};
  FeedForwardNet::Cache cache;
  net.Forward(x.data(), &cache);
  FeedForwardNet g1 = FeedForwardNet::ZerosLike(net);
  net.Backward(cache, 1.0, &g1, nullptr);
  FeedForwardNet g2 = FeedForwardNet::ZerosLike(net);
  net.Backward(cache, 1.0, &g2, nullptr);
  net.Backward(cache, 1.0, &g2, nullptr);
  // g2 == 2 * g1 everywhere.
  for (size_t l = 0; l < net.num_layers(); ++l) {
    for (size_t i = 0; i < g1.weight(l).data().size(); ++i) {
      EXPECT_NEAR(g2.weight(l).data()[i], 2 * g1.weight(l).data()[i], 1e-12);
    }
  }
}

TEST(FfnTest, AddScaledAndZerosLike) {
  FeedForwardNet a = MakeNet(4, 23);
  FeedForwardNet b = MakeNet(4, 29);
  FeedForwardNet sum = a;
  sum.AddScaled(b, -1.0);
  // sum + b == a.
  sum.AddScaled(b, 1.0);
  for (size_t l = 0; l < a.num_layers(); ++l) {
    for (size_t i = 0; i < a.weight(l).data().size(); ++i) {
      EXPECT_NEAR(sum.weight(l).data()[i], a.weight(l).data()[i], 1e-12);
    }
  }
  FeedForwardNet z = FeedForwardNet::ZerosLike(a);
  EXPECT_EQ(z.MaxAbs(), 0.0);
  EXPECT_EQ(z.ParamCount(), a.ParamCount());
}

TEST(FfnAdamTest, StepMovesTowardLowerLoss) {
  FeedForwardNet net = MakeNet(4, 31);
  std::vector<double> x = {0.5, -0.2, 0.8, 0.3};
  const double label = 1.0;
  FfnAdam adam;
  double first_loss = 0;
  for (int i = 0; i < 300; ++i) {
    FeedForwardNet::Cache cache;
    double logit = net.Forward(x.data(), &cache);
    if (i == 0) first_loss = BceWithLogits(logit, label);
    FeedForwardNet grads = FeedForwardNet::ZerosLike(net);
    net.Backward(cache, BceWithLogitsGrad(logit, label), &grads, nullptr);
    adam.Step(&net, grads);
  }
  double final_loss = BceWithLogits(net.Forward(x.data(), nullptr), label);
  EXPECT_LT(final_loss, first_loss * 0.5);
}

}  // namespace
}  // namespace hetefedrec
