#include "src/fed/sync/replica.h"

#include <algorithm>

namespace hetefedrec {

void ClientReplica::HoldValues(uint32_t row, const double* data,
                               size_t width) {
  auto it = value_pos_.find(row);
  size_t pos;
  if (it == value_pos_.end()) {
    pos = values_.size();
    values_.resize(pos + width);
    value_pos_.emplace(row, pos);
  } else {
    pos = it->second;
  }
  std::copy(data, data + width, values_.begin() + pos);
}

const double* ClientReplica::Values(uint32_t row, size_t width) const {
  auto it = value_pos_.find(row);
  if (it == value_pos_.end()) return nullptr;
  (void)width;
  return values_.data() + it->second;
}

void ClientReplica::Invalidate() {
  held_.clear();
  value_pos_.clear();
  values_.clear();
}

}  // namespace hetefedrec
