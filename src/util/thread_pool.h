// Fixed-size worker pool for data-parallel loops.
//
// Built for the federated round loop: the clients of a scheduler batch
// train independently, so ParallelFor runs them across workers while the
// caller participates too. Scheduling is dynamic (atomic work counter), but
// callers that need determinism simply write results into per-index slots
// and merge them in index order afterwards — the pool imposes no ordering
// of its own. Workers persist across ParallelFor calls, so per-round
// dispatch cost is two mutex hand-offs, not thread creation.
#ifndef HETEFEDREC_UTIL_THREAD_POOL_H_
#define HETEFEDREC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hetefedrec {

/// \brief Persistent worker threads executing indexed parallel loops.
class ThreadPool {
 public:
  /// Spawns `num_workers` persistent workers (0 is valid: ParallelFor then
  /// runs entirely on the calling thread).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Number of threads that may execute loop bodies: the workers plus the
  /// calling thread. `slot` arguments passed to `fn` are < this.
  size_t num_slots() const { return workers_.size() + 1; }

  /// Runs fn(index, slot) for every index in [0, n), distributed over the
  /// workers and the calling thread; returns when all calls finished.
  /// `slot` identifies the executing thread (workers 0..num_workers()-1,
  /// the caller num_workers()) so callers can keep per-thread scratch.
  /// `fn` must be safe to invoke concurrently for distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop(size_t slot);
  void RunShare(size_t slot);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new job
  std::condition_variable done_cv_;   // caller waits for completion
  const std::function<void(size_t, size_t)>* job_ = nullptr;
  size_t job_size_ = 0;
  uint64_t job_epoch_ = 0;            // bumped per ParallelFor
  std::atomic<size_t> next_index_{0};
  size_t active_workers_ = 0;
  bool shutdown_ = false;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_THREAD_POOL_H_
