#include "src/data/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/math/stats.h"

namespace hetefedrec {

DatasetStats ComputeDatasetStats(const Dataset& ds) {
  DatasetStats s;
  s.num_users = ds.num_users();
  s.num_items = ds.num_items();
  std::vector<double> counts(ds.num_users());
  for (size_t u = 0; u < ds.num_users(); ++u) {
    counts[u] =
        static_cast<double>(ds.InteractionCount(static_cast<UserId>(u)));
    s.num_interactions += static_cast<size_t>(counts[u]);
  }
  s.avg_interactions = Mean(counts);
  s.median_interactions = Percentile(counts, 50.0);
  s.p80_interactions = Percentile(counts, 80.0);
  s.stddev_interactions = StdDev(counts);
  return s;
}

std::vector<HistogramBucket> InteractionHistogram(const Dataset& ds,
                                                  size_t num_buckets) {
  std::vector<HistogramBucket> buckets(std::max<size_t>(1, num_buckets));
  double max_count = 0.0;
  std::vector<double> counts(ds.num_users());
  for (size_t u = 0; u < ds.num_users(); ++u) {
    counts[u] =
        static_cast<double>(ds.InteractionCount(static_cast<UserId>(u)));
    max_count = std::max(max_count, counts[u]);
  }
  double width = (max_count + 1.0) / static_cast<double>(buckets.size());
  for (size_t b = 0; b < buckets.size(); ++b) {
    buckets[b].lo = width * static_cast<double>(b);
    buckets[b].hi = width * static_cast<double>(b + 1);
  }
  for (double c : counts) {
    size_t b = std::min(buckets.size() - 1,
                        static_cast<size_t>(c / width));
    buckets[b].count++;
  }
  return buckets;
}

std::string RenderHistogram(const std::vector<HistogramBucket>& buckets,
                            size_t max_width) {
  size_t peak = 1;
  for (const auto& b : buckets) peak = std::max(peak, b.count);
  std::ostringstream os;
  for (const auto& b : buckets) {
    size_t bar = (b.count * max_width + peak - 1) / peak;
    char label[48];
    std::snprintf(label, sizeof(label), "[%6.0f,%6.0f) %6zu ", b.lo, b.hi,
                  b.count);
    os << label << std::string(bar, '#') << "\n";
  }
  return os.str();
}

}  // namespace hetefedrec
