// Reproduces Table VI: HeteFedRec under different client-division ratios
// (5:3:2 / 1:1:1 / 2:3:5), bracketed by All Small (≈ 10:0:0) and
// All Large (≈ 0:0:10).
//
// Paper shape: the conservative 5:3:2 division wins, and performance
// degrades monotonically as more clients are pushed into larger models
// (left to right), ending at All Large as the worst.
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  const std::array<double, 3> ratios[] = {
      {5, 3, 2}, {1, 1, 1}, {2, 3, 5}};
  const char* ratio_names[] = {"5:3:2", "1:1:1", "2:3:5"};

  TablePrinter table(
      "Table VI: performance under different client group divisions",
      {"Model", "Dataset", "Metric", "All Small", "5:3:2", "1:1:1", "2:3:5",
       "All Large"});

  int cells = 0, conservative_best = 0, monotone_hete = 0;
  for (const GridCase& cell : EvaluationGrid(cli)) {
    ExperimentConfig cfg = *base_cfg;
    cfg.base_model = cell.model;
    cfg.dataset = cell.dataset;
    ApplyPaperDims(&cfg);

    auto runner = ExperimentRunner::Create(cfg);
    if (!runner.ok()) return FailWith(runner.status());
    std::fprintf(stderr, "[table6] %s / %s homogeneous ...\n",
                 BaseModelName(cell.model).c_str(), cell.dataset.c_str());
    GroupedEval small = (*runner)->Run(Method::kAllSmall).final_eval;
    GroupedEval large = (*runner)->Run(Method::kAllLarge).final_eval;

    std::array<GroupedEval, 3> hete;
    for (int i = 0; i < 3; ++i) {
      ExperimentConfig div_cfg = cfg;
      div_cfg.group_fractions = ratios[i];
      auto div_runner = ExperimentRunner::Create(div_cfg);
      if (!div_runner.ok()) return FailWith(div_runner.status());
      std::fprintf(stderr, "[table6] %s / %s ratio %s ...\n",
                   BaseModelName(cell.model).c_str(), cell.dataset.c_str(),
                   ratio_names[i]);
      hete[i] = (*div_runner)->Run(Method::kHeteFedRec).final_eval;
    }

    table.AddRow({BaseModelName(cell.model), cell.dataset, "Recall",
                  TablePrinter::Num(small.overall.recall),
                  TablePrinter::Num(hete[0].overall.recall),
                  TablePrinter::Num(hete[1].overall.recall),
                  TablePrinter::Num(hete[2].overall.recall),
                  TablePrinter::Num(large.overall.recall)});
    table.AddRow({BaseModelName(cell.model), cell.dataset, "NDCG",
                  TablePrinter::Num(small.overall.ndcg),
                  TablePrinter::Num(hete[0].overall.ndcg),
                  TablePrinter::Num(hete[1].overall.ndcg),
                  TablePrinter::Num(hete[2].overall.ndcg),
                  TablePrinter::Num(large.overall.ndcg)});
    table.AddSeparator();

    cells++;
    conservative_best += (hete[0].overall.ndcg >= hete[1].overall.ndcg &&
                          hete[0].overall.ndcg >= hete[2].overall.ndcg);
    monotone_hete += (hete[0].overall.ndcg >= hete[2].overall.ndcg &&
                      hete[2].overall.ndcg >= large.overall.ndcg);
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "table6_division"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());

  std::printf(
      "\nShape checks:\n"
      "  5:3:2 best among divisions          : %d/%d cells (paper: all)\n"
      "  degrades toward All Large (5:3:2 >= 2:3:5 >= All Large): %d/%d "
      "cells (paper trend)\n",
      conservative_best, cells, monotone_hete, cells);
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
