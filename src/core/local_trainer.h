// Client-side local training (Algorithm 1, CLIENT_TRAIN).
//
// A client downloads its group's public parameters, trains local copies for
// `local_epochs` full-batch Adam steps, and uploads the resulting parameter
// deltas. Under unified dual-task learning (Eq. 11) a client in group a
// optimizes one BCE objective per width Ns..Na over *shared* embedding
// storage, so sub-slices of its update are meaningful updates for the
// smaller models; medium/large clients additionally apply the DDR
// regularizer (Eq. 14). The private user embedding is updated in place
// (Eq. 3) and never leaves the client.
#ifndef HETEFEDREC_CORE_LOCAL_TRAINER_H_
#define HETEFEDREC_CORE_LOCAL_TRAINER_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/fed/client.h"
#include "src/models/ffn.h"
#include "src/models/scorer.h"

namespace hetefedrec {

/// One dual-task objective: train at `width` against the Θ of `slot`.
struct LocalTaskSpec {
  size_t slot = 0;   // server model slot owning the Θ for this width
  size_t width = 0;  // embedding slice width
};

/// \brief What a client uploads after local training.
struct LocalUpdateResult {
  /// V_local - V_received (dense, |V| x client width).
  Matrix v_delta;
  /// Θ_local - Θ_received per task, aligned with the task list.
  std::vector<FeedForwardNet> theta_deltas;
  /// Mean per-sample BCE loss (summed over tasks) in the final local epoch.
  double train_loss = 0.0;
  /// Unweighted DDR loss in the final local epoch (0 when DDR off).
  double reg_loss = 0.0;
  /// Mean per-sample validation BCE of the *selected* epoch (0 when the
  /// validation carve-out is disabled or the client is too small).
  double validation_loss = 0.0;
  /// Scalars downloaded / uploaded (Table III accounting).
  size_t params_down = 0;
  size_t params_up = 0;
};

/// \brief Options controlling local optimization.
struct LocalTrainerOptions {
  int local_epochs = 2;
  double lr = 0.001;
  bool apply_ddr = false;      // DDR active for this client
  double alpha = 1.0;          // DDR weight
  size_t ddr_sample_rows = 0;  // 0 = all rows
  /// Fraction of the client's training positives held out as a local
  /// validation set (§III-A: "10% of its training data will be used as the
  /// validation set to guide the local training"). When > 0 and the client
  /// has at least `min_validation_positives` training items, the client
  /// keeps the parameters of the local epoch with the lowest validation
  /// BCE instead of the final epoch. 0 disables the carve-out.
  double validation_fraction = 0.0;
  size_t min_validation_positives = 10;
};

/// \brief Executes CLIENT_TRAIN for one client.
///
/// Stateless across clients apart from scratch buffers, so one instance is
/// reused for the whole simulation (buffers are re-sized per width).
class LocalTrainer {
 public:
  LocalTrainer(const Dataset& ds, BaseModel model);

  /// Runs local training.
  ///
  /// \param client persistent client state; its user embedding is updated
  ///   in place and its RNG advanced.
  /// \param global_table the client's group item embedding table (width =
  ///   client width = tasks.back().width).
  /// \param thetas global Θ per task (same order as `tasks`; the last task
  ///   is the client's own width).
  /// \param tasks the dual-task list, widths ascending.
  /// \param options optimization parameters.
  LocalUpdateResult Train(ClientState* client, const Matrix& global_table,
                          const std::vector<const FeedForwardNet*>& thetas,
                          const std::vector<LocalTaskSpec>& tasks,
                          const LocalTrainerOptions& options);

 private:
  const Dataset& ds_;
  BaseModel model_;

  // Scratch reused across clients to limit allocator churn.
  Matrix v_local_;
  Matrix v_grad_;
  Matrix u_grad_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_CORE_LOCAL_TRAINER_H_
