#include "src/eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetefedrec {
namespace {

TEST(MetricsTest, RecallCountsHitsOverRelevant) {
  std::unordered_set<ItemId> rel = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RecallAtK({1, 9, 2, 8}, rel), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK({5, 6, 7}, rel), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2, 3, 4}, rel), 1.0);
}

TEST(MetricsTest, RecallEmptyRelevantIsZero) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2}, {}), 0.0);
}

TEST(MetricsTest, NdcgPerfectRankingIsOne) {
  std::unordered_set<ItemId> rel = {3, 5};
  EXPECT_DOUBLE_EQ(NdcgAtK({3, 5, 1, 2}, rel, 4), 1.0);
}

TEST(MetricsTest, NdcgPositionSensitive) {
  std::unordered_set<ItemId> rel = {7};
  double at_rank1 = NdcgAtK({7, 1, 2}, rel, 3);
  double at_rank3 = NdcgAtK({1, 2, 7}, rel, 3);
  EXPECT_DOUBLE_EQ(at_rank1, 1.0);
  // Hit at rank 3 (1-indexed): DCG = 1/log2(4) = 0.5; IDCG = 1.
  EXPECT_DOUBLE_EQ(at_rank3, 0.5);
  EXPECT_GT(at_rank1, at_rank3);
}

TEST(MetricsTest, NdcgHandComputedMixedCase) {
  std::unordered_set<ItemId> rel = {1, 2, 3};
  // Hits at ranks 1 and 3 of a K=3 list; |rel| = 3 -> ideal hits = 3.
  double dcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(4.0);
  double idcg =
      1.0 / std::log2(2.0) + 1.0 / std::log2(3.0) + 1.0 / std::log2(4.0);
  EXPECT_NEAR(NdcgAtK({1, 9, 2}, rel, 3), dcg / idcg, 1e-12);
}

TEST(MetricsTest, NdcgIdealTruncatedAtK) {
  // More relevant items than list length: IDCG uses min(K, |rel|).
  std::unordered_set<ItemId> rel = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 2}, rel, 2), 1.0);
}

TEST(MetricsTest, NdcgIdealNotTruncatedByStarvedList) {
  // Regression: a ranking that could not fill K slots (catalogue or
  // candidate pool smaller than K) must be normalized by min(K, |rel|),
  // not by the achievable list length — the old min(topk.size(), |rel|)
  // normalization graded a 2-slot list against a 2-hit ideal and returned
  // a perfect 1.0 here.
  std::unordered_set<ItemId> rel = {1, 2, 3};
  const double dcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(3.0);
  const double idcg =
      1.0 / std::log2(2.0) + 1.0 / std::log2(3.0) + 1.0 / std::log2(4.0);
  // Both listed items hit, but the ideal@10 list would have placed the
  // third relevant item at rank 3.
  EXPECT_NEAR(NdcgAtK({1, 2}, rel, 10), dcg / idcg, 1e-12);
  EXPECT_LT(NdcgAtK({1, 2}, rel, 10), 1.0);
  // With k == topk.size() the fix is inert: same value as before.
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 2}, rel, 2), 1.0);
}

TEST(MetricsTest, NdcgStarvedCandidatePoolSingleRelevant) {
  // Candidate set smaller than K with one test item: a hit at rank 1 of a
  // 3-candidate pool is still ideal for k=20 (IDCG truncates at |rel|=1),
  // while a hit at rank 3 is not.
  std::unordered_set<ItemId> rel = {9};
  EXPECT_DOUBLE_EQ(NdcgAtK({9, 4, 5}, rel, 20), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({4, 5, 9}, rel, 20), 0.5);
}

TEST(ExtendedMetricsTest, HitRate) {
  std::unordered_set<ItemId> rel = {5};
  EXPECT_DOUBLE_EQ(HitRateAtK({1, 2, 5}, rel), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK({1, 2, 3}, rel), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtK({}, rel), 0.0);
}

TEST(ExtendedMetricsTest, Precision) {
  std::unordered_set<ItemId> rel = {1, 2};
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 3, 4}, rel), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK({3, 4}, rel), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, rel), 0.0);
}

TEST(ExtendedMetricsTest, MrrFirstHitPosition) {
  std::unordered_set<ItemId> rel = {9};
  EXPECT_DOUBLE_EQ(MrrAtK({9, 1, 2}, rel), 1.0);
  EXPECT_DOUBLE_EQ(MrrAtK({1, 9, 2}, rel), 0.5);
  EXPECT_DOUBLE_EQ(MrrAtK({1, 2, 9}, rel), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(MrrAtK({1, 2, 3}, rel), 0.0);
}

TEST(ExtendedMetricsTest, AveragePrecisionHandComputed) {
  std::unordered_set<ItemId> rel = {1, 3};
  // Hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecisionAtK({1, 5, 3}, rel), (1.0 + 2.0 / 3.0) / 2.0,
              1e-12);
  // Perfect ranking: AP = 1.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({1, 3}, rel), 1.0);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({5, 6}, rel), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({1}, {}), 0.0);
}

TEST(TopKTest, OrdersByScoreDescending) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  std::vector<bool> mask(4, false);
  auto top = TopKItems(scores, mask, 3);
  EXPECT_EQ(top, (std::vector<ItemId>{1, 3, 2}));
}

TEST(TopKTest, MaskExcludesTrainItems) {
  std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  std::vector<bool> mask = {true, false, true, false};
  auto top = TopKItems(scores, mask, 4);
  EXPECT_EQ(top, (std::vector<ItemId>{1, 3}));
}

TEST(TopKTest, KLargerThanCandidates) {
  std::vector<double> scores = {0.5, 0.6};
  std::vector<bool> mask = {false, false};
  EXPECT_EQ(TopKItems(scores, mask, 10).size(), 2u);
}

TEST(TopKTest, TieBreakByItemId) {
  std::vector<double> scores = {0.5, 0.5, 0.5};
  std::vector<bool> mask(3, false);
  EXPECT_EQ(TopKItems(scores, mask, 2), (std::vector<ItemId>{0, 1}));
}

}  // namespace
}  // namespace hetefedrec
