// Reproduces Table I (dataset statistics) and Fig. 1 (distribution of
// users' item interaction numbers) on the paper-calibrated synthetic
// datasets. Paper reference values are printed alongside the measured ones.
#include <cstdio>

#include "bench/common.h"
#include "src/data/stats.h"
#include "src/data/synthetic.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

struct PaperRow {
  const char* name;
  long long users, items, interactions;
  double avg, p50, p80, stddev;  // stddev quoted in §I
};

constexpr PaperRow kPaper[] = {
    {"ml", 6040, 3706, 1000209, 165, 77, 203, 154.2},
    {"anime", 10482, 6888, 1265530, 120, 69, 150, 79.8},
    {"douban", 1833, 7397, 330268, 180, 115, 244, 105.2},
};

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto cfg = ConfigFromFlags(cli);
  if (!cfg.ok()) {
    std::fprintf(stderr, "%s\n", cfg.status().ToString().c_str());
    return 1;
  }
  const std::string only = cli.GetString("dataset");

  TablePrinter table(
      "Table I: Statistics of recommendation datasets "
      "(paper reference vs synthetic reproduction at --scale=" +
          cli.GetString("scale") + ")",
      {"Dataset", "Source", "Users", "Items", "Interactions", "Avg.", "<50%",
       "<80%", "StdDev"});

  for (const PaperRow& row : kPaper) {
    if (!only.empty() && only != row.name) continue;
    auto data_cfg = DatasetConfigByName(row.name, cfg->data_scale);
    auto ds = Dataset::FromInteractions(GenerateInteractions(*data_cfg),
                                        data_cfg->num_users,
                                        data_cfg->num_items, SplitOptions{});
    if (!ds.ok()) {
      std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    DatasetStats s = ComputeDatasetStats(*ds);
    table.AddRow({row.name, "paper", TablePrinter::Count(row.users),
                  TablePrinter::Count(row.items),
                  TablePrinter::Count(row.interactions),
                  TablePrinter::Num(row.avg, 0), TablePrinter::Num(row.p50, 0),
                  TablePrinter::Num(row.p80, 0),
                  TablePrinter::Num(row.stddev, 1)});
    table.AddRow({row.name, "synthetic",
                  TablePrinter::Count(static_cast<long long>(s.num_users)),
                  TablePrinter::Count(static_cast<long long>(s.num_items)),
                  TablePrinter::Count(
                      static_cast<long long>(s.num_interactions)),
                  TablePrinter::Num(s.avg_interactions, 0),
                  TablePrinter::Num(s.median_interactions, 0),
                  TablePrinter::Num(s.p80_interactions, 0),
                  TablePrinter::Num(s.stddev_interactions, 1)});
    table.AddSeparator();

    std::printf("Fig. 1 — interaction count distribution (%s):\n",
                row.name);
    std::fputs(RenderHistogram(InteractionHistogram(*ds, 12)).c_str(),
               stdout);
    std::printf("\n");
  }
  table.Print();
  st = table.WriteCsv(CsvPath(cli, "table1_datasets"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
