// Top-K ranking evaluation over the full catalogue.
//
// Protocol (§V-A/B): for each user, score every item the user has not
// trained on, take the top-20, and compute Recall@20 / NDCG@20 against the
// held-out 20% test interactions. Reported overall and per client group
// (Fig. 6 breaks NDCG down by Us/Um/Ul).
#ifndef HETEFEDREC_EVAL_EVALUATOR_H_
#define HETEFEDREC_EVAL_EVALUATOR_H_

#include <array>
#include <functional>
#include <vector>

#include "src/data/dataset.h"
#include "src/fed/group.h"
#include "src/fed/groups.h"

namespace hetefedrec {

/// \brief Mean metrics over a set of users.
struct EvalResult {
  double recall = 0.0;
  double ndcg = 0.0;
  size_t users = 0;  // users contributing (non-empty test set)
};

/// \brief Overall + per-group evaluation.
struct GroupedEval {
  EvalResult overall;
  std::array<EvalResult, kNumGroups> per_group;

  const EvalResult& group(Group g) const {
    return per_group[static_cast<int>(g)];
  }
};

/// \brief Runs the ranking protocol against a scoring callback.
class Evaluator {
 public:
  /// Scores all items for a user: fills `scores` (resized to num_items).
  using ScoreFn =
      std::function<void(UserId user, std::vector<double>* scores)>;

  /// \param ds dataset (test sets + train masks).
  /// \param assignment client group division (for the per-group breakdown).
  /// \param top_k recommendation list length (paper: 20).
  /// \param user_sample evaluate only this many users (0 = all); users are
  ///   drawn deterministically from `seed` so curves are comparable across
  ///   epochs and methods.
  Evaluator(const Dataset& ds, const GroupAssignment& assignment,
            size_t top_k = 20, size_t user_sample = 0, uint64_t seed = 9177);

  /// Evaluates `score_fn` over the (sampled) user population.
  GroupedEval Evaluate(const ScoreFn& score_fn) const;

  const std::vector<UserId>& eval_users() const { return users_; }

 private:
  const Dataset& ds_;
  const GroupAssignment& assignment_;
  size_t top_k_;
  std::vector<UserId> users_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_EVAL_EVALUATOR_H_
