#include "src/fed/sync/network.h"

#include "src/util/logging.h"

namespace hetefedrec {

namespace {
// Stream tags keep the independent draw families from colliding.
constexpr uint64_t kOnlineStream = 0xa11ceULL;
constexpr uint64_t kBandwidthStream = 0xba2dULL;
constexpr uint64_t kLatencyStream = 0x1a7eULL;
}  // namespace

SimulatedNetwork::SimulatedNetwork(const NetworkOptions& options)
    : options_(options), base_(options.seed) {
  HFR_CHECK_GT(options_.availability, 0.0);
  HFR_CHECK_LE(options_.availability, 1.0);
  HFR_CHECK_GT(options_.bandwidth_bytes_per_sec, 0.0);
  HFR_CHECK_GE(options_.bandwidth_sigma, 0.0);
  HFR_CHECK_GE(options_.latency_seconds, 0.0);
  HFR_CHECK_GE(options_.latency_sigma, 0.0);
  HFR_CHECK_GE(options_.compute_seconds_per_sample, 0.0);
}

bool SimulatedNetwork::Online(UserId u, uint64_t round) const {
  if (options_.availability >= 1.0) return true;
  Rng draw = base_.Fork(kOnlineStream)
                 .Fork(static_cast<uint64_t>(u))
                 .Fork(round);
  return draw.Bernoulli(options_.availability);
}

double SimulatedNetwork::ClientBandwidth(UserId u) const {
  if (options_.bandwidth_sigma == 0.0) {
    return options_.bandwidth_bytes_per_sec;
  }
  Rng draw = base_.Fork(kBandwidthStream).Fork(static_cast<uint64_t>(u));
  return options_.bandwidth_bytes_per_sec *
         draw.LogNormal(0.0, options_.bandwidth_sigma);
}

double SimulatedNetwork::FinishSeconds(UserId u, uint64_t round,
                                       size_t bytes_down, size_t bytes_up,
                                       size_t samples) const {
  double latency = options_.latency_seconds;
  if (options_.latency_sigma > 0.0) {
    Rng draw = base_.Fork(kLatencyStream)
                   .Fork(static_cast<uint64_t>(u))
                   .Fork(round);
    latency *= draw.LogNormal(0.0, options_.latency_sigma);
  }
  const double bw = ClientBandwidth(u);
  return latency +
         static_cast<double>(bytes_down + bytes_up) / bw +
         options_.compute_seconds_per_sample * static_cast<double>(samples);
}

}  // namespace hetefedrec
