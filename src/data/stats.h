// Dataset summary statistics (Table I) and interaction-count histograms
// (Fig. 1).
#ifndef HETEFEDREC_DATA_STATS_H_
#define HETEFEDREC_DATA_STATS_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"

namespace hetefedrec {

/// \brief The per-dataset summary the paper reports in Table I.
struct DatasetStats {
  size_t num_users = 0;
  size_t num_items = 0;
  size_t num_interactions = 0;
  double avg_interactions = 0.0;     // "Avg." column
  double median_interactions = 0.0;  // "< 50%" column
  double p80_interactions = 0.0;     // "< 80%" column
  double stddev_interactions = 0.0;  // §I quotes these (154.2 / 79.8 / 105.2)
};

/// Computes Table I statistics for `ds`.
DatasetStats ComputeDatasetStats(const Dataset& ds);

/// \brief One bar of the Fig. 1 histogram.
struct HistogramBucket {
  double lo = 0.0;  // inclusive
  double hi = 0.0;  // exclusive
  size_t count = 0;
};

/// Histogram of users' interaction counts with `num_buckets` equal-width
/// buckets over [0, max_count] — the Fig. 1 distribution plot.
std::vector<HistogramBucket> InteractionHistogram(const Dataset& ds,
                                                  size_t num_buckets);

/// Renders the histogram as ASCII art (one row per bucket) for bench output.
std::string RenderHistogram(const std::vector<HistogramBucket>& buckets,
                            size_t max_width = 50);

}  // namespace hetefedrec

#endif  // HETEFEDREC_DATA_STATS_H_
