// TopKSelector property tests: every selection path — streaming heap
// (whole-array and arbitrary block splits), bucketed threshold cascade,
// and the partial_sort reference — must return the *identical* ranked
// list. The ordering (score desc, id asc) is a strict total order over
// distinct ids, so the top-K list is unique; these tests pin that the
// implementations actually realize it over randomized inputs with heavy
// ties, extreme magnitudes, masked prefixes and k ∈ {1, ..., n, > n}.
#include "src/eval/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "src/eval/metrics.h"
#include "src/util/rng.h"

namespace hetefedrec {
namespace {

// Oracle: full sort of the unmasked ids by (score desc, id asc).
std::vector<ItemId> FullRanking(const std::vector<double>& scores,
                                const std::vector<bool>& masked, size_t k) {
  std::vector<ItemId> ids;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!masked[i]) ids.push_back(static_cast<ItemId>(i));
  }
  std::sort(ids.begin(), ids.end(), [&](ItemId a, ItemId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  ids.resize(std::min(k, ids.size()));
  return ids;
}

// Runs the streaming session over `scores` split at pseudo-random block
// boundaries (block layout must never affect the result).
std::vector<ItemId> StreamInBlocks(TopKSelector* sel,
                                   const std::vector<double>& scores,
                                   const std::vector<bool>& masked, size_t k,
                                   Rng* rng) {
  sel->Begin(k, &masked);
  size_t first = 0;
  while (first < scores.size()) {
    size_t bs = 1 + rng->UniformInt(scores.size() - first);
    sel->Push(static_cast<ItemId>(first), scores.data() + first, bs);
    first += bs;
  }
  std::vector<ItemId> out;
  sel->Finish(&out);
  return out;
}

TEST(TopKSelectorTest, AllPathsMatchReferenceOnRandomizedHeavyTies) {
  Rng rng(1234);
  TopKSelector sel;  // one instance across all cases: scratch must reset
  for (int rep = 0; rep < 200; ++rep) {
    const size_t n = 1 + rng.UniformInt(400);
    std::vector<double> scores(n);
    for (auto& s : scores) {
      // Quantized scores: ~8 distinct values over up to 400 items forces
      // long tie runs, so id tie-breaking decides most of the list.
      s = static_cast<double>(rng.UniformInt(8)) * 0.125;
    }
    std::vector<bool> masked(n, false);
    // Masked prefix (the shape train-item masking produces for the dense
    // front of a user's history) plus scattered masked items.
    const size_t prefix = rng.UniformInt(n);
    for (size_t i = 0; i < prefix; ++i) masked[i] = true;
    for (size_t i = prefix; i < n; ++i) masked[i] = rng.UniformInt(7) == 0;

    for (size_t k : {size_t{1}, size_t{7}, n, n + 5}) {
      SCOPED_TRACE(testing::Message() << "rep " << rep << " n " << n
                                      << " k " << k);
      std::vector<ItemId> expect = FullRanking(scores, masked, k);

      std::vector<ItemId> heap;
      sel.SelectMasked(scores, masked, k, &heap);
      EXPECT_EQ(heap, expect);

      std::vector<ItemId> ref;
      sel.SelectMaskedReference(scores, masked, k, &ref);
      EXPECT_EQ(ref, expect);

      EXPECT_EQ(StreamInBlocks(&sel, scores, masked, k, &rng), expect);
      EXPECT_EQ(TopKItems(scores, masked, k), expect);
    }
  }
}

TEST(TopKSelectorTest, CandidatePathsMatchReference) {
  Rng rng(977);
  TopKSelector sel;
  for (int rep = 0; rep < 100; ++rep) {
    // Large enough to engage the bucketed cascade (n >= 256, n > 4k).
    const size_t n = 256 + rng.UniformInt(800);
    std::vector<ItemId> ids(n);
    std::vector<double> scores(n);
    ItemId next = 0;
    for (size_t i = 0; i < n; ++i) {
      next += 1 + static_cast<ItemId>(rng.UniformInt(3));
      ids[i] = next;
      scores[i] = static_cast<double>(rng.UniformInt(16)) * 0.0625;
    }
    // k = 20 exercises the heap path, k = n/4 and up the bucketed cascade
    // (engaged when k >= n/8 on cascade-sized pools).
    for (size_t k : {size_t{1}, size_t{20}, n / 4, n / 2, n, n + 3}) {
      SCOPED_TRACE(testing::Message() << "rep " << rep << " n " << n
                                      << " k " << k);
      std::vector<ItemId> ref;
      sel.SelectFromCandidatesReference(ids, scores, k, &ref);

      std::vector<ItemId> cascade;
      sel.SelectFromCandidates(ids, scores, k, &cascade);
      EXPECT_EQ(cascade, ref);
      EXPECT_EQ(TopKFromCandidates(ids, scores, k), ref);
    }
  }
}

TEST(TopKSelectorTest, ExtremeFiniteAndInfiniteScores) {
  // ±inf and extreme magnitudes: the cascade's bucket width degenerates
  // (non-finite range), so it must fall back to the exact heap; the heap
  // itself orders any NaN-free doubles correctly.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<ItemId> ids = {2, 3, 5, 7, 11, 13, 17};
  std::vector<double> scores = {-inf, 1e300, 0.0,  -0.0,
                                inf,  -1e300, 5e-324};
  TopKSelector sel;
  for (size_t k : {size_t{1}, size_t{3}, size_t{7}, size_t{9}}) {
    std::vector<ItemId> ref;
    sel.SelectFromCandidatesReference(ids, scores, k, &ref);
    std::vector<ItemId> got;
    sel.SelectFromCandidates(ids, scores, k, &got);
    EXPECT_EQ(got, ref) << "k " << k;
  }
  EXPECT_EQ(TopKFromCandidates(ids, scores, 3),
            (std::vector<ItemId>{11, 3, 17}));

  // Same through the masked paths.
  std::vector<bool> mask(scores.size(), false);
  mask[1] = true;
  for (size_t k : {size_t{1}, size_t{4}, size_t{10}}) {
    std::vector<ItemId> ref;
    sel.SelectMaskedReference(scores, mask, k, &ref);
    std::vector<ItemId> got;
    sel.SelectMasked(scores, mask, k, &got);
    EXPECT_EQ(got, ref) << "k " << k;
  }
}

TEST(TopKSelectorTest, CascadeSizedExtremesFallBackToHeap) {
  // Cascade-sized pools (n >= 256, k >= n/8) whose score range defeats
  // the histogram: ±inf endpoints, and a *finite* range whose width
  // overflows to +inf (-1e308..1e308 — casting the resulting NaN bucket
  // index would be UB). SelectCascade must decline and the heap fallback
  // must still match the reference.
  Rng rng(431);
  const double inf = std::numeric_limits<double>::infinity();
  for (double extreme : {inf, 1e308}) {
    const size_t n = 320;
    std::vector<ItemId> ids(n);
    std::vector<double> scores(n);
    for (size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<ItemId>(2 * i + 1);
      scores[i] = rng.Uniform(-1.0, 1.0);
    }
    scores[17] = extreme;
    scores[251] = -extreme;
    TopKSelector sel;
    for (size_t k : {n / 8, n / 2, n}) {
      std::vector<ItemId> ref;
      sel.SelectFromCandidatesReference(ids, scores, k, &ref);
      std::vector<ItemId> got;
      sel.SelectFromCandidates(ids, scores, k, &got);
      EXPECT_EQ(got, ref) << "extreme " << extreme << " k " << k;
    }
  }
}

TEST(TopKSelectorTest, AllScoresEqualFallsBackAndTieBreaksById) {
  // Degenerate range (lo == hi) over a cascade-sized input with k large
  // enough to engage the cascade (k >= n/8): bucketing cannot
  // discriminate, the cascade declines, and the heap fallback returns
  // pure id order.
  std::vector<ItemId> ids(300);
  std::vector<double> scores(300, 0.25);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<ItemId>(ids.size() - i);  // descending ids
  }
  TopKSelector sel;
  std::vector<ItemId> got;
  sel.SelectFromCandidates(ids, scores, 60, &got);
  std::vector<ItemId> expect(60);
  for (size_t i = 0; i < expect.size(); ++i) {
    expect[i] = static_cast<ItemId>(i + 1);
  }
  EXPECT_EQ(got, expect);
}

TEST(TopKSelectorTest, EverythingMaskedOrKZero) {
  std::vector<double> scores = {0.4, 0.2, 0.9};
  std::vector<bool> all_masked(3, true);
  TopKSelector sel;
  std::vector<ItemId> out = {99};
  sel.SelectMasked(scores, all_masked, 2, &out);
  EXPECT_TRUE(out.empty());

  out = {99};
  std::vector<bool> none_masked(3, false);
  sel.SelectMasked(scores, none_masked, 0, &out);
  EXPECT_TRUE(out.empty());

  out = {99};
  sel.SelectFromCandidates({1, 2, 3}, scores, 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(TopKSelectorTest, SessionsReset) {
  // A session must not leak entries into the next one.
  std::vector<bool> mask(4, false);
  TopKSelector sel;
  sel.Begin(3, &mask);
  const double a[] = {0.9, 0.8, 0.7, 0.6};
  sel.Push(0, a, 4);
  std::vector<ItemId> out;
  sel.Finish(&out);
  EXPECT_EQ(out, (std::vector<ItemId>{0, 1, 2}));

  sel.Begin(2, nullptr);
  const double b[] = {0.1, 0.5};
  sel.Push(0, b, 2);
  sel.Finish(&out);
  EXPECT_EQ(out, (std::vector<ItemId>{1, 0}));
}

}  // namespace
}  // namespace hetefedrec
