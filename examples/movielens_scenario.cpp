// MovieLens-style scenario: the paper's §V evaluation in miniature.
//
// Generates an ML-calibrated synthetic dataset, divides clients 5:3:2 by
// interaction count, then compares HeteFedRec with the two homogeneous
// baselines — overall, per client group, and over training epochs — the
// way Table II / Fig. 6 / Fig. 7 slice the results.
//
//   ./build/examples/movielens_scenario [--scale=0.08] [--epochs=16]
#include <cstdio>

#include "src/core/trainer.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace hetefedrec;

  CommandLine cli;
  cli.AddFlag("scale", "0.06", "dataset scale in (0,1]");
  cli.AddFlag("epochs", "12", "global training epochs");
  cli.AddFlag("model", "ncf", "base model: ncf | lightgcn");
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 cli.Usage(argv[0]).c_str());
    return 1;
  }

  ExperimentConfig config;
  config.dataset = "ml";
  config.data_scale = cli.GetDouble("scale");
  config.global_epochs = cli.GetInt("epochs");
  // Round size scales with the population (the paper's 256 of 6,040);
  // keeping 256 at example scale would mean ~1 aggregation round per epoch.
  config.clients_per_round = 64;
  config.eval_every = 2;  // record a convergence curve (Fig. 7 style)
  config.eval_user_sample = 300;
  auto model = BaseModelByName(cli.GetString("model"));
  if (!model.ok()) return 1;
  config.base_model = *model;

  auto runner = ExperimentRunner::Create(config);
  if (!runner.ok()) {
    std::fprintf(stderr, "%s\n", runner.status().ToString().c_str());
    return 1;
  }
  const auto& groups = (*runner)->groups();
  std::printf(
      "MovieLens-like dataset: %zu users, %zu items; division thresholds "
      "(interactions): Us <= %.0f < Um <= %.0f < Ul\n\n",
      (*runner)->dataset().num_users(), (*runner)->dataset().num_items(),
      groups.thresholds[0], groups.thresholds[1]);

  TablePrinter table("Overall and per-group NDCG@20",
                     {"Method", "Recall", "NDCG", "Us", "Um", "Ul"});
  for (Method m : {Method::kAllSmall, Method::kAllLarge,
                   Method::kHeteFedRec}) {
    ExperimentResult r = (*runner)->Run(m);
    table.AddRow({MethodName(m), TablePrinter::Num(r.final_eval.overall.recall),
                  TablePrinter::Num(r.final_eval.overall.ndcg),
                  TablePrinter::Num(r.final_eval.group(Group::kSmall).ndcg),
                  TablePrinter::Num(r.final_eval.group(Group::kMedium).ndcg),
                  TablePrinter::Num(r.final_eval.group(Group::kLarge).ndcg)});
    std::printf("%s convergence:", MethodName(m).c_str());
    for (const EpochPoint& p : r.history) {
      std::printf(" e%d=%.4f", p.epoch, p.eval.overall.ndcg);
    }
    std::printf("\n");
  }
  std::printf("\n");
  table.Print();
  return 0;
}
