// Backend tolerance harness: the fp32 compute backend trades the fp64
// path's bit-identity for speed, so its guarantee is a *bounded metric
// drift* instead — for every method × base model, sync and async, the
// final Recall@20/NDCG@20 of an fp32 run must stay within kMetricTol of
// the fp64 reference run. Alongside the tolerance bound, two exact
// guarantees ARE pinned bit-for-bit:
//
//   * fp32 and fp32_simd are results-identical (the scalar fp32 kernels
//     emulate the AVX2 lanes; src/math/kernels_fp32.h), so the SIMD
//     toggle can never change a result.
//   * Selecting fp64 after an fp32 run reproduces the untouched fp64
//     bits — the backend switch is process-global but leaves no residue
//     in server state, RNG streams or kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/trainer.h"
#include "src/math/backend.h"
#include "tests/core/equivalence_test_util.h"

namespace hetefedrec {
namespace {

// |fp32 − fp64| bound on the final overall Recall@20 / NDCG@20. Metrics
// are rank-based, so fp32's ~1e-7-relative parameter drift only moves
// them when a near-tie flips; this envelope holds across all methods,
// models and schedules at the test scale (and is the contract quoted in
// docs/PERFORMANCE.md "Numeric backends").
constexpr double kMetricTol = 1e-3;
// Per-group metrics average over ~12-30 users here, so one flipped
// near-tie moves them further; bounded loosely as a sanity rail.
constexpr double kGroupTol = 1e-2;

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 2;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 57;
  return cfg;
}

ExperimentResult RunWith(ExperimentConfig cfg, ComputeBackend backend,
                         Method method) {
  cfg.compute_backend = backend;
  auto runner = ExperimentRunner::Create(cfg);
  EXPECT_TRUE(runner.ok()) << runner.status().ToString();
  ExperimentResult res = (*runner)->Run(method);
  // Every test in this binary must leave the process on the reference
  // backend so suites interleave safely.
  ActivateBackend(ComputeBackend::kFp64);
  return res;
}

void ExpectWithinTolerance(const GroupedEval& fp64_eval,
                           const GroupedEval& fp32_eval) {
  EXPECT_EQ(fp64_eval.overall.users, fp32_eval.overall.users);
  EXPECT_LE(std::fabs(fp64_eval.overall.recall - fp32_eval.overall.recall),
            kMetricTol);
  EXPECT_LE(std::fabs(fp64_eval.overall.ndcg - fp32_eval.overall.ndcg),
            kMetricTol);
  for (int g = 0; g < kNumGroups; ++g) {
    EXPECT_LE(
        std::fabs(fp64_eval.per_group[g].recall - fp32_eval.per_group[g].recall),
        kGroupTol)
        << "group " << g;
    EXPECT_LE(
        std::fabs(fp64_eval.per_group[g].ndcg - fp32_eval.per_group[g].ndcg),
        kGroupTol)
        << "group " << g;
  }
}

class BackendToleranceEndToEnd : public ::testing::TestWithParam<BaseModel> {};

TEST_P(BackendToleranceEndToEnd, AllMethodsWithinToleranceSync) {
  for (Method method : kAllMethods) {
    ExperimentConfig cfg = SmallConfig();
    cfg.base_model = GetParam();
    ExperimentResult fp64_res = RunWith(cfg, ComputeBackend::kFp64, method);
    ExperimentResult fp32_res = RunWith(cfg, ComputeBackend::kFp32, method);
    SCOPED_TRACE(MethodName(method));
    ExpectWithinTolerance(fp64_res.final_eval, fp32_res.final_eval);
  }
}

TEST_P(BackendToleranceEndToEnd, AllMethodsWithinToleranceAsync) {
  for (Method method : kAllMethods) {
    // Standalone training has no server schedule; async doesn't apply.
    if (method == Method::kStandalone) continue;
    ExperimentConfig cfg = SmallConfig();
    cfg.base_model = GetParam();
    cfg.async_mode = true;
    // The backend must not change the simulated schedule: the async merge
    // order depends on transfer times, so both runs keep the same
    // wire_scalar_bytes (the config default) — this isolates numeric
    // drift from the fp32 wire-width accounting the CLI's "auto" applies.
    ExperimentResult fp64_res = RunWith(cfg, ComputeBackend::kFp64, method);
    ExperimentResult fp32_res = RunWith(cfg, ComputeBackend::kFp32, method);
    SCOPED_TRACE(MethodName(method));
    ExpectWithinTolerance(fp64_res.final_eval, fp32_res.final_eval);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, BackendToleranceEndToEnd,
                         ::testing::Values(BaseModel::kNcf,
                                           BaseModel::kLightGcn));

TEST(BackendEquivalence, Fp32SimdIsResultsIdenticalToFp32) {
  // Not a tolerance: the SIMD arm must reproduce scalar fp32 bit-for-bit
  // end to end (trivially true on machines where AVX2 is unavailable and
  // fp32_simd falls back to the scalar kernels).
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    ExperimentConfig cfg = SmallConfig();
    cfg.base_model = model;
    ExperimentResult scalar_res =
        RunWith(cfg, ComputeBackend::kFp32, Method::kHeteFedRec);
    ExperimentResult simd_res =
        RunWith(cfg, ComputeBackend::kFp32Simd, Method::kHeteFedRec);
    ExpectSameEval(scalar_res.final_eval, simd_res.final_eval);
    EXPECT_EQ(scalar_res.collapse_variance, simd_res.collapse_variance);
    EXPECT_EQ(scalar_res.comm.TotalTransmitted(),
              simd_res.comm.TotalTransmitted());
  }
}

TEST(BackendEquivalence, Fp64IsUntouchedAfterFp32Runs) {
  // The default backend's bit-identity guarantee survives backend
  // switching within one process: fp64 → fp32 → fp64 must reproduce the
  // first fp64 run exactly.
  ExperimentConfig cfg = SmallConfig();
  ExperimentResult before =
      RunWith(cfg, ComputeBackend::kFp64, Method::kHeteFedRec);
  RunWith(cfg, ComputeBackend::kFp32Simd, Method::kHeteFedRec);
  ExperimentResult after =
      RunWith(cfg, ComputeBackend::kFp64, Method::kHeteFedRec);
  ExpectSameEval(before.final_eval, after.final_eval);
  EXPECT_EQ(before.collapse_variance, after.collapse_variance);
  EXPECT_EQ(before.collapse_cv, after.collapse_cv);
}

TEST(BackendEquivalence, AsyncFp32WithinToleranceUnderFaultsAndAdmission) {
  // The drift bound must hold through the robustness stack too: faults,
  // retry backoff and admission control all draw from hash streams that
  // see only fp64 uploads (deltas are upcast before the wire), so the
  // injected fault sequence is backend-independent and the metric drift
  // stays numeric.
  ExperimentConfig cfg = SmallConfig();
  cfg.async_mode = true;
  cfg.fault_upload_loss = 0.03;
  cfg.fault_corrupt = 0.03;
  cfg.admission_control = true;
  cfg.admit_max_row_norm = 1.0;
  ExperimentResult fp64_res =
      RunWith(cfg, ComputeBackend::kFp64, Method::kHeteFedRec);
  ExperimentResult fp32_res =
      RunWith(cfg, ComputeBackend::kFp32, Method::kHeteFedRec);
  ExpectWithinTolerance(fp64_res.final_eval, fp32_res.final_eval);
}

}  // namespace
}  // namespace hetefedrec
