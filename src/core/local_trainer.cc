#include "src/core/local_trainer.h"

#include <limits>

#include "src/core/decorrelation.h"
#include "src/math/activations.h"
#include "src/math/adam.h"

namespace hetefedrec {

LocalTrainer::LocalTrainer(const Dataset& ds, BaseModel model)
    : ds_(ds), model_(model) {}

LocalUpdateResult LocalTrainer::Train(
    ClientState* client, const Matrix& global_table,
    const std::vector<const FeedForwardNet*>& thetas,
    const std::vector<LocalTaskSpec>& tasks,
    const LocalTrainerOptions& options) {
  HFR_CHECK(!tasks.empty());
  HFR_CHECK_EQ(tasks.size(), thetas.size());
  const size_t width = tasks.back().width;
  HFR_CHECK_EQ(global_table.cols(), width);
  HFR_CHECK_EQ(client->user_embedding.cols(), width);
  for (size_t t = 0; t + 1 < tasks.size(); ++t) {
    HFR_CHECK_LE(tasks[t].width, tasks[t + 1].width);
  }

  // Local working copies ("download", counted once per round).
  v_local_ = global_table;
  std::vector<FeedForwardNet> theta_local;
  theta_local.reserve(tasks.size());
  size_t theta_params = 0;
  for (const FeedForwardNet* g : thetas) {
    HFR_CHECK(g != nullptr);
    theta_local.push_back(*g);
    theta_params += g->ParamCount();
  }

  // Gradient accumulators and fresh optimizer state for this round.
  if (!v_grad_.SameShape(v_local_)) v_grad_ = Matrix(v_local_.rows(), width);
  if (u_grad_.cols() != width) u_grad_ = Matrix(1, width);
  std::vector<FeedForwardNet> theta_grad = theta_local;

  AdamOptions adam_opt;
  adam_opt.lr = options.lr;
  Adam adam_v(adam_opt);
  Adam adam_u(adam_opt);
  std::vector<FfnAdam> adam_theta(tasks.size(), FfnAdam(adam_opt));

  // One Scorer per task width.
  std::vector<Scorer> scorers;
  scorers.reserve(tasks.size());
  for (const LocalTaskSpec& task : tasks) {
    scorers.emplace_back(model_, task.width);
  }

  // Validation carve-out (§III-A): hold out the tail of the (already
  // shuffled) training list; fit on the rest; keep the epoch with the best
  // validation BCE.
  const std::vector<ItemId>& all_train = ds_.TrainItems(client->id);
  std::vector<ItemId> fit_items = all_train;
  std::vector<Sample> val_samples;
  const bool use_validation =
      options.validation_fraction > 0.0 &&
      all_train.size() >= options.min_validation_positives;
  if (use_validation) {
    size_t n_val = std::max<size_t>(
        1, static_cast<size_t>(options.validation_fraction *
                               static_cast<double>(all_train.size())));
    std::vector<ItemId> val_items(all_train.end() - n_val, all_train.end());
    fit_items.assign(all_train.begin(), all_train.end() - n_val);
    val_samples =
        ds_.BuildEpochFromPositives(client->id, val_items, &client->rng);
  }
  const std::vector<ItemId>& train_items = fit_items;

  // Best-epoch snapshot state for validation-guided selection.
  double best_val_loss = std::numeric_limits<double>::infinity();
  Matrix best_v;
  Matrix best_u;
  std::vector<FeedForwardNet> best_theta;

  LocalUpdateResult result;

  for (int epoch = 0; epoch < options.local_epochs; ++epoch) {
    std::vector<Sample> samples = ds_.BuildEpochFromPositives(
        client->id, fit_items, &client->rng);
    v_grad_.SetZero();
    u_grad_.SetZero();
    for (auto& g : theta_grad) g.SetZero();

    double bce_loss = 0.0;
    Scorer::TrainCache cache;
    for (size_t t = 0; t < tasks.size(); ++t) {
      Scorer& sc = scorers[t];
      sc.BeginUser(client->user_embedding.Row(0), v_local_, train_items);
      for (const Sample& s : samples) {
        double logit = sc.ScoreForTrain(v_local_, theta_local[t], s.item,
                                        &cache);
        bce_loss += BceWithLogits(logit, s.label);
        sc.BackwardSample(theta_local[t], cache,
                          BceWithLogitsGrad(logit, s.label), &v_grad_,
                          u_grad_.Row(0), &theta_grad[t]);
      }
      sc.FinishUserBackward(&v_grad_, u_grad_.Row(0));
    }

    double reg_loss = 0.0;
    if (options.apply_ddr) {
      reg_loss = DecorrelationLossAndGrad(v_local_, options.alpha,
                                          options.ddr_sample_rows,
                                          &client->rng, &v_grad_);
    }

    adam_v.Step(&v_local_, v_grad_);
    adam_u.Step(&client->user_embedding, u_grad_);
    for (size_t t = 0; t < tasks.size(); ++t) {
      adam_theta[t].Step(&theta_local[t], theta_grad[t]);
    }

    if (epoch + 1 == options.local_epochs) {
      result.train_loss =
          samples.empty()
              ? 0.0
              : bce_loss / (static_cast<double>(samples.size()) *
                            static_cast<double>(tasks.size()));
      result.reg_loss = reg_loss;
    }

    if (use_validation && !val_samples.empty()) {
      // Validation BCE of the client's own-width model after this epoch.
      Scorer& own = scorers.back();
      own.BeginUser(client->user_embedding.Row(0), v_local_, fit_items);
      double val = 0.0;
      for (const Sample& s : val_samples) {
        val += BceWithLogits(own.Score(v_local_, theta_local.back(), s.item),
                             s.label);
      }
      val /= static_cast<double>(val_samples.size());
      if (val < best_val_loss) {
        best_val_loss = val;
        best_v = v_local_;
        best_u = client->user_embedding;
        best_theta = theta_local;
      }
    }
  }

  if (use_validation && !best_v.empty()) {
    v_local_ = best_v;
    client->user_embedding = best_u;
    theta_local = std::move(best_theta);
    result.validation_loss = best_val_loss;
  }

  // Deltas to upload.
  result.v_delta = v_local_;
  result.v_delta.AddScaled(global_table, -1.0);
  result.theta_deltas.reserve(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    FeedForwardNet d = theta_local[t];
    d.AddScaled(*thetas[t], -1.0);
    result.theta_deltas.push_back(std::move(d));
  }
  result.params_down = v_local_.size() + theta_params;
  result.params_up = result.params_down;
  return result;
}

}  // namespace hetefedrec
