// Asynchronous merge-on-arrival aggregation (docs/SYNC.md).
//
// The synchronous protocol merges a round's updates behind a barrier: the
// server waits for every selected client (PR 2's over-selection merely
// softens the tail), so one straggler sets the round's wall clock. This
// aggregator removes the barrier: every client's update merges the moment
// its *simulated completion time* arrives, weighted down by how stale the
// model it trained on has become.
//
// Determinism. Completions are held in a virtual-clock event queue ordered
// by (finish_seconds, submission sequence). Merges pop strictly in that
// order, so the merge sequence — and therefore every table, every staleness
// gap and every metric — is a pure function of the experiment seed: it does
// not depend on the thread count used to train clients, nor on the order in
// which completions were submitted.
//
// Staleness. Each ApplyUpdate advances the server's VersionedTable round,
// so the version gap s = round(merge) − round(download) counts exactly the
// merges that landed between a client's download and its arrival — the
// quantity the delta-sync machinery already tracks per row. The update is
// applied with FedAsync-style polynomial damping
//
//   w(s) = 1 / (1 + s)^alpha
//
// so a fresh arrival (s = 0) merges exactly like a synchronous one-client
// round (w = 1, pinned by tests) and a stale straggler fades smoothly
// instead of blocking anyone. Arrivals staler than `max_staleness` are
// dropped (the caller requeues the client, and CommStats counts the drop).
//
// Distillation. RESKD's per-round trigger has no round to hang off any
// more; the aggregator fires it every `distill_every` merged updates
// instead, which matches the synchronous cadence in expectation when
// distill_every == clients_per_round.
#ifndef HETEFEDREC_FED_SYNC_ASYNC_AGGREGATOR_H_
#define HETEFEDREC_FED_SYNC_ASYNC_AGGREGATOR_H_

#include <cstdint>
#include <vector>

#include "src/core/distillation.h"
#include "src/core/local_trainer.h"
#include "src/core/server_api.h"
#include "src/data/types.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief Event-queue server core for asynchronous aggregation.
class AsyncAggregator {
 public:
  struct Options {
    /// Staleness exponent of w(s) = 1/(1+s)^alpha. 0 = no damping.
    double staleness_alpha = 0.5;
    /// Drop arrivals with staleness > max_staleness (0 = no cap).
    size_t max_staleness = 0;
    /// Run server distillation every this many merged updates (0 = never).
    size_t distill_every = 0;
  };

  /// \brief What one MergeNext did, echoed for the caller's accounting.
  struct Outcome {
    UserId user = 0;
    /// Virtual clock after the event (the arrival's completion time).
    double finish_seconds = 0.0;
    /// Server versions advanced between the download and this merge.
    uint64_t staleness = 0;
    /// Weight the update merged with (0 when dropped).
    double weight = 0.0;
    bool merged = false;     // false = dropped or rejected
    bool distilled = false;  // a distillation fired after this merge
    /// The server's admission control rejected the update (merged = false;
    /// distinct from a staleness drop — the caller quarantines the client).
    bool rejected = false;
    bool rejected_nonfinite = false;  // which gate fired (else outlier)
    /// Rows norm-clipped by admission control on an accepted merge.
    size_t rows_clipped = 0;
    /// Echoed from the update so the caller can account without keeping it.
    double train_loss = 0.0;
    size_t params_up = 0;
  };

  /// The aggregator merges into `server` (any ServerApi implementation),
  /// which must outlive it.
  AsyncAggregator(ServerApi* server, const Options& options);

  const Options& options() const { return options_; }

  /// w(s) = 1/(1+s)^alpha. w(0) == 1.0 exactly.
  double StalenessWeight(uint64_t staleness) const;

  /// Completions submitted but not yet merged.
  size_t in_flight() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Virtual time of the last popped event (0 before the first).
  double clock_seconds() const { return clock_; }

  size_t merged_updates() const { return merged_; }
  size_t dropped_updates() const { return dropped_; }
  uint64_t next_seq() const { return next_seq_; }

  /// Restores the scalar event-queue state from a run checkpoint. Only
  /// legal while no completions are in flight — run checkpoints are taken
  /// at epoch boundaries, where the queue has fully drained.
  void RestoreState(double clock_seconds, uint64_t next_seq, size_t merged,
                    size_t dropped);

  /// Enqueues one trained client: it downloaded the model at
  /// `download_version` (the VersionedTable round at dispatch) and its
  /// simulated completion arrives at absolute time `finish_seconds`, which
  /// must not precede the current clock. `tasks` must outlive the merge.
  void Submit(UserId user, const std::vector<LocalTaskSpec>* tasks,
              LocalUpdateResult update, uint64_t download_version,
              double finish_seconds);

  /// Pops the earliest completion (ties broken by submission order),
  /// advances the virtual clock, and merges the update with its staleness
  /// weight — or drops it when past the cap. Fires distillation every
  /// `distill_every` merges when `kd_rng` is non-null. Requires !empty().
  Outcome MergeNext(const DistillationOptions& kd_options, Rng* kd_rng);

 private:
  struct Event {
    double finish = 0.0;
    uint64_t seq = 0;
    uint64_t download_version = 0;
    UserId user = 0;
    const std::vector<LocalTaskSpec>* tasks = nullptr;
    LocalUpdateResult update;
  };

  /// Min-heap order on (finish, seq).
  static bool Later(const Event& a, const Event& b);

  ServerApi* server_;
  Options options_;
  std::vector<Event> events_;  // heap via push_heap/pop_heap
  uint64_t next_seq_ = 0;
  double clock_ = 0.0;
  size_t merged_ = 0;
  size_t dropped_ = 0;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_SYNC_ASYNC_AGGREGATOR_H_
