// Reproduces Fig. 8: sensitivity of HeteFedRec to the DDR weight α on ML.
//
// Paper shape: NDCG rises to a peak at a moderate α and falls again as α
// grows — too little regularization permits collapse, too much distorts
// the recommendation objective.
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  const double alphas[] = {0.5, 1.0, 1.5, 2.0};

  TablePrinter table("Fig. 8: NDCG@20 vs DDR factor α on ML",
                     {"Model", "alpha", "NDCG", "Recall"});

  std::string only_model = cli.GetString("model");
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    if (!only_model.empty() &&
        only_model != (model == BaseModel::kNcf ? "ncf" : "lightgcn")) {
      continue;
    }
    double first = 0, peak = 0, last = 0;
    for (double alpha : alphas) {
      ExperimentConfig cfg = *base_cfg;
      cfg.base_model = model;
      cfg.dataset = "ml";
      ApplyPaperDims(&cfg);
      cfg.alpha = alpha;
      auto runner = ExperimentRunner::Create(cfg);
      if (!runner.ok()) return FailWith(runner.status());
      std::fprintf(stderr, "[fig8] %s / alpha=%.1f ...\n",
                   BaseModelName(model).c_str(), alpha);
      GroupedEval eval = (*runner)->Run(Method::kHeteFedRec).final_eval;
      table.AddRow({BaseModelName(model), TablePrinter::Num(alpha, 1),
                    TablePrinter::Num(eval.overall.ndcg),
                    TablePrinter::Num(eval.overall.recall)});
      if (alpha == alphas[0]) first = eval.overall.ndcg;
      peak = std::max(peak, eval.overall.ndcg);
      last = eval.overall.ndcg;
    }
    table.AddSeparator();
    std::printf(
        "%s shape check: interior peak (peak > endpoints): %s "
        "(paper: rises to a peak then falls)\n",
        BaseModelName(model).c_str(),
        (peak > first || peak > last) ? "YES" : "NO");
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "fig8_alpha"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
