#include "src/core/distillation.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/data/types.h"
#include "src/math/kernels.h"

namespace hetefedrec {

namespace {

// Gathers the selected rows into a contiguous k x n block — the layout the
// batched Gram kernel (and any future SIMD backend) wants. The Vkd rows are
// scattered across the table; everything downstream then reads packed rows.
void GatherRows(const Matrix& table, const std::vector<ItemId>& items,
                std::vector<double>* packed) {
  const size_t n = table.cols();
  packed->resize(items.size() * n);
  for (size_t a = 0; a < items.size(); ++a) {
    const double* src = table.Row(items[a]);
    std::copy(src, src + n, packed->data() + a * n);
  }
}

// Relation matrix from a precomputed Gram matrix: rel(a,b) =
// gram(a,b) / (norm_a * norm_b) with 1s on the diagonal and 0 for all-zero
// rows — exactly CosineSimilarity per pair (norms are the diagonal sqrts,
// the same Dot the scalar path computed).
void RelationFromGram(const Matrix& gram, const std::vector<double>& norm,
                      Matrix* rel) {
  const size_t k = gram.rows();
  for (size_t a = 0; a < k; ++a) {
    (*rel)(a, a) = 1.0;
    for (size_t b = a + 1; b < k; ++b) {
      double s = (norm[a] == 0.0 || norm[b] == 0.0)
                     ? 0.0
                     : gram(a, b) / (norm[a] * norm[b]);
      (*rel)(a, b) = s;
      (*rel)(b, a) = s;
    }
  }
}

}  // namespace

Matrix RelationMatrix(const Matrix& table, const std::vector<ItemId>& items) {
  const size_t k = items.size();
  const size_t n = table.cols();
  std::vector<double> packed;
  GatherRows(table, items, &packed);
  Matrix gram(k, k);
  GramMatrix(packed.data(), k, n, &gram);
  std::vector<double> norm(k);
  for (size_t a = 0; a < k; ++a) norm[a] = std::sqrt(gram(a, a));
  Matrix rel(k, k);
  RelationFromGram(gram, norm, &rel);
  return rel;
}

double RelationLoss(const Matrix& relation, const Matrix& target) {
  HFR_CHECK(relation.SameShape(target));
  double loss = 0.0;
  for (size_t i = 0; i < relation.data().size(); ++i) {
    double d = relation.data()[i] - target.data()[i];
    loss += d * d;
  }
  return loss;
}

namespace {

// One gradient-descent step of || rel(V) - target ||² on the selected rows.
void DistillStep(Matrix* table, const std::vector<ItemId>& items,
                 const Matrix& target, double lr) {
  const size_t k = items.size();
  const size_t n = table->cols();
  // One gather + one batched Gram serve norms, normalized copies and the
  // relation matrix (the scalar path recomputed each dot per pair).
  std::vector<double> packed;
  GatherRows(*table, items, &packed);
  Matrix gram(k, k);
  GramMatrix(packed.data(), k, n, &gram);
  // Normalized copies ẑ_a and norms of the selected rows. Norm2 is
  // sqrt(Dot(row, row)) — the Gram diagonal.
  Matrix z(k, n);
  std::vector<double> norm(k, 0.0);
  for (size_t a = 0; a < k; ++a) {
    norm[a] = std::sqrt(gram(a, a));
    if (norm[a] > 0) {
      double inv = 1.0 / norm[a];
      const double* row = packed.data() + a * n;
      double* zr = z.Row(a);
      for (size_t d = 0; d < n; ++d) zr[d] = row[d] * inv;
    }
  }
  Matrix rel(k, k);
  RelationFromGram(gram, norm, &rel);

  // Accumulate gradients; entries (a,b) and (b,a) both appear in the
  // squared norm, so each unordered pair contributes coefficient
  // 4 (s_ab - t_ab); ds_ab/dx_a = (ẑ_b - s_ab ẑ_a) / ||x_a||.
  Matrix grads(k, n);
  for (size_t a = 0; a < k; ++a) {
    if (norm[a] == 0.0) continue;
    const double* za = z.Row(a);
    double* ga = grads.Row(a);
    for (size_t b = 0; b < k; ++b) {
      if (b == a || norm[b] == 0.0) continue;
      double coef = 4.0 * (rel(a, b) - target(a, b)) / norm[a];
      const double* zb = z.Row(b);
      double s = rel(a, b);
      for (size_t d = 0; d < n; ++d) ga[d] += coef * (zb[d] - s * za[d]);
    }
  }
  for (size_t a = 0; a < k; ++a) {
    double* row = table->Row(items[a]);
    const double* ga = grads.Row(a);
    for (size_t d = 0; d < n; ++d) row[d] -= lr * ga[d];
  }
}

}  // namespace

double EnsembleDistill(std::vector<Matrix*> tables,
                       const DistillationOptions& options, Rng* rng,
                       std::vector<ItemId>* sampled_items) {
  HFR_CHECK(!tables.empty());
  const size_t num_items = tables[0]->rows();
  for (const Matrix* t : tables) HFR_CHECK_EQ(t->rows(), num_items);

  // Sample Vkd (distinct items).
  size_t k = std::min(options.kd_items, num_items);
  std::vector<ItemId> all(num_items);
  for (size_t i = 0; i < num_items; ++i) all[i] = static_cast<ItemId>(i);
  rng->Shuffle(&all);
  std::vector<ItemId> items(all.begin(), all.begin() + k);
  if (sampled_items != nullptr) *sampled_items = items;

  // Ensemble relation d_ens (Eq. 16), fixed during the descent.
  Matrix ens(k, k);
  std::vector<Matrix> relations;
  relations.reserve(tables.size());
  for (Matrix* t : tables) {
    relations.push_back(RelationMatrix(*t, items));
    ens.AddScaled(relations.back(), 1.0);
  }
  ens.Scale(1.0 / static_cast<double>(tables.size()));

  double pre_loss = 0.0;
  for (const Matrix& rel : relations) pre_loss += RelationLoss(rel, ens);
  pre_loss /= static_cast<double>(tables.size());

  for (Matrix* t : tables) {
    for (int s = 0; s < options.steps; ++s) {
      DistillStep(t, items, ens, options.lr);
    }
  }
  return pre_loss;
}

}  // namespace hetefedrec
