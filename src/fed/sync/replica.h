// Server-side bookkeeping of one client's cached row state.
//
// Under delta sync the server must know, per client, which rows the client
// already holds and at which version, so each participation ships only the
// subscribed rows whose version advanced. A `ClientReplica` is exactly that
// record: (slot, row → held version), plus — optionally, for verification —
// the row bytes the client would hold, so tests can assert the protocol is
// lossless (a row the server decides not to ship must be bit-identical to
// the live table).
//
// Memory is proportional to the rows the client has ever subscribed to
// (its interacted items + sampled negatives), not the catalogue — and with
// a capacity set, to min(rows subscribed, capacity): the replica evicts its
// least recently used rows and the protocol simply re-ships them on the
// next subscription (a miss looks exactly like a never-held row).
#ifndef HETEFEDREC_FED_SYNC_REPLICA_H_
#define HETEFEDREC_FED_SYNC_REPLICA_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace hetefedrec {

/// \brief One client's cached (row → version [, values]) state with an
/// optional LRU capacity.
class ClientReplica {
 public:
  /// Sentinel "never shipped" version; any real version compares newer.
  static constexpr uint64_t kNeverHeld = ~uint64_t{0};

  /// Model slot this replica mirrors, or npos before the first sync.
  static constexpr size_t kNoSlot = ~size_t{0};
  size_t slot() const { return slot_; }
  void set_slot(size_t slot) { slot_ = slot; }

  /// Maximum rows held (0 = unlimited). Exceeding rows are evicted least
  /// recently used first; an evicted row reads as never held.
  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity);

  size_t rows_held() const { return held_.size(); }

  /// Version the client holds for `row`, or kNeverHeld.
  uint64_t HeldVersion(uint32_t row) const {
    auto it = held_.find(row);
    return it == held_.end() ? kNeverHeld : it->second.version;
  }

  bool IsStale(uint32_t row, uint64_t current_version) const {
    const uint64_t held = HeldVersion(row);
    return held == kNeverHeld || held < current_version;
  }

  /// Records that the client now holds `row` at `version`, marks it most
  /// recently used, and evicts LRU rows beyond the capacity.
  void Hold(uint32_t row, uint64_t version);

  /// Marks a held row most recently used (a subscription read that needed
  /// no ship still pins the row's recency). No-op for unheld rows.
  void Touch(uint32_t row);

  /// Records the shipped bytes (verification mode only).
  void HoldValues(uint32_t row, const double* data, size_t width);

  /// Cached bytes for `row`, nullptr if values are not tracked for it.
  const double* Values(uint32_t row, size_t width) const;

  /// Drops everything — the client behaves as a first-time participant.
  void Invalidate();

  /// Held rows and versions in LRU order, *coldest first*, so replaying
  /// them through `Hold` in order rebuilds the identical recency list
  /// (run checkpoints). Verification-mode value caches are not exported.
  void ExportRows(std::vector<uint32_t>* rows,
                  std::vector<uint64_t>* versions) const {
    rows->clear();
    versions->clear();
    rows->reserve(lru_.size());
    versions->reserve(lru_.size());
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      rows->push_back(*it);
      versions->push_back(held_.at(*it).version);
    }
  }

 private:
  struct Entry {
    uint64_t version = 0;
    std::list<uint32_t>::iterator lru;  // position in lru_ (front = hottest)
  };

  void EvictOverCapacity();

  size_t slot_ = kNoSlot;
  size_t capacity_ = 0;
  // hfr-lint: iteration-order-safe(find/emplace/erase lookups only - ExportRows walks the deterministic lru_ list, never this map)
  std::unordered_map<uint32_t, Entry> held_;
  std::list<uint32_t> lru_;  // most recently used at the front
  // Verification mode: row → offset into values_. Slots of evicted rows are
  // recycled through free_value_pos_ so capped replicas stay bounded.
  // hfr-lint: iteration-order-safe(find/emplace/erase lookups only, never walked)
  std::unordered_map<uint32_t, size_t> value_pos_;
  std::vector<size_t> free_value_pos_;
  std::vector<double> values_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_SYNC_REPLICA_H_
