#include "src/data/stats.h"

#include <gtest/gtest.h>

namespace hetefedrec {
namespace {

Dataset MakeDataset() {
  // users with 10, 5, 1 interactions (split keeps totals intact).
  std::vector<Interaction> xs;
  for (ItemId i = 0; i < 10; ++i) xs.push_back({0, i});
  for (ItemId i = 0; i < 5; ++i) xs.push_back({1, i});
  xs.push_back({2, 5});
  return Dataset::FromInteractions(xs, 3, 12).value();
}

TEST(DataStatsTest, TableOneFields) {
  DatasetStats s = ComputeDatasetStats(MakeDataset());
  EXPECT_EQ(s.num_users, 3u);
  EXPECT_EQ(s.num_items, 12u);
  EXPECT_EQ(s.num_interactions, 16u);
  EXPECT_NEAR(s.avg_interactions, 16.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.median_interactions, 5.0);
  EXPECT_GT(s.stddev_interactions, 0.0);
}

TEST(DataStatsTest, HistogramCountsAllUsers) {
  auto buckets = InteractionHistogram(MakeDataset(), 5);
  ASSERT_EQ(buckets.size(), 5u);
  size_t total = 0;
  for (const auto& b : buckets) {
    EXPECT_LT(b.lo, b.hi);
    total += b.count;
  }
  EXPECT_EQ(total, 3u);
}

TEST(DataStatsTest, HistogramBucketsContiguous) {
  auto buckets = InteractionHistogram(MakeDataset(), 4);
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_DOUBLE_EQ(buckets[i].lo, buckets[i - 1].hi);
  }
}

TEST(DataStatsTest, RenderHistogramHasOneRowPerBucket) {
  auto buckets = InteractionHistogram(MakeDataset(), 4);
  std::string art = RenderHistogram(buckets, 20);
  size_t rows = 0;
  for (char c : art) rows += (c == '\n');
  EXPECT_EQ(rows, 4u);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace hetefedrec
