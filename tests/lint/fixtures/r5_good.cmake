# Fixture: must produce zero findings. The AVX2 TU carries exactly the
# sanctioned ISA flags, and fast-math appears only in this comment:
# -ffast-math is documented as forbidden, not enabled.
add_compile_options(-O2 -Wall)
set_source_files_properties(kernels_avx2.cc PROPERTIES COMPILE_OPTIONS "-mavx2;-mfma")
