#include "src/models/ffn.h"

#include <type_traits>

#include "src/math/activations.h"
#include "src/math/init.h"
#include "src/math/kernels.h"

namespace hetefedrec {

template <typename T>
FeedForwardNetT<T>::FeedForwardNetT(size_t input_dim,
                                    std::vector<size_t> hidden)
    : input_dim_(input_dim) {
  HFR_CHECK_GT(input_dim, 0u);
  size_t in = input_dim;
  for (size_t h : hidden) {
    HFR_CHECK_GT(h, 0u);
    weights_.emplace_back(in, h);
    biases_.emplace_back(1, h);
    in = h;
  }
  weights_.emplace_back(in, 1);  // output logit
  biases_.emplace_back(1, 1);
}

template <typename T>
void FeedForwardNetT<T>::InitXavier(Rng* rng) {
  if constexpr (std::is_same_v<T, double>) {
    for (size_t l = 0; l < weights_.size(); ++l) {
      InitXavierUniform(&weights_[l], rng);
      biases_[l].SetZero();
    }
  } else {
    (void)rng;
    HFR_CHECK(false);  // float nets are cast from double, never initialized
  }
}

template <typename T>
T FeedForwardNetT<T>::Forward(const T* x, Cache* cache) const {
  HFR_CHECK(!weights_.empty());
  if (cache) {
    cache->input.assign(x, x + input_dim_);
    cache->pre.resize(weights_.size());
    cache->post.resize(weights_.size());
  }
  // Per-sample Forward is the *reference* implementation the batched
  // kernels are pinned bit-identical against (double backend); it keeps
  // the plain scalar loops on purpose (thread-local ping-pong buffers keep
  // it allocation-free). The hot paths run ForwardBatch instead.
  thread_local AlignedVector<T> cur;
  thread_local AlignedVector<T> next;
  cur.assign(x, x + input_dim_);
  for (size_t l = 0; l < weights_.size(); ++l) {
    const MatrixT<T>& w = weights_[l];
    const MatrixT<T>& b = biases_[l];
    next.assign(w.cols(), T(0));
    for (size_t j = 0; j < w.cols(); ++j) next[j] = b(0, j);
    for (size_t i = 0; i < w.rows(); ++i) {
      T xi = cur[i];
      if (xi == T(0)) continue;
      const T* wrow = w.Row(i);
      for (size_t j = 0; j < w.cols(); ++j) next[j] += xi * wrow[j];
    }
    if (cache) cache->pre[l].assign(next.begin(), next.end());
    const bool is_output = (l + 1 == weights_.size());
    if (!is_output) {
      for (T& v : next) v = Relu(v);
    }
    if (cache) cache->post[l].assign(next.begin(), next.end());
    std::swap(cur, next);
  }
  return cur[0];
}

template <typename T>
void FeedForwardNetT<T>::ForwardBatch(const T* x, size_t batch,
                                      BatchCache* cache, T* logits) const {
  HFR_CHECK(!weights_.empty());
  if (cache) cache->batch = batch;
  if (batch == 0) return;
  if (cache) {
    cache->input.assign(x, x + batch * input_dim_);
    cache->pre.resize(weights_.size());
    cache->post.resize(weights_.size());
  }
  thread_local AlignedVector<T> cur;
  thread_local AlignedVector<T> next;
  const T* src = x;  // first layer reads the caller's block in place
  for (size_t l = 0; l < weights_.size(); ++l) {
    const MatrixT<T>& w = weights_[l];
    const MatrixT<T>& b = biases_[l];
    next.resize(batch * w.cols());
    GemvBatchBiased(src, batch, w.rows(), w.data().data(), b.data().data(),
                    w.cols(), next.data());
    if (cache) cache->pre[l].assign(next.begin(), next.end());
    const bool is_output = (l + 1 == weights_.size());
    if (!is_output) {
      for (T& v : next) v = Relu(v);
    }
    if (cache) cache->post[l].assign(next.begin(), next.end());
    std::swap(cur, next);
    src = cur.data();
  }
  // The output layer has one column, so cur is batch x 1.
  std::copy(cur.begin(), cur.end(), logits);
}

template <typename T>
void FeedForwardNetT<T>::ForwardPrefix(const T* x, size_t split,
                                       T* acc) const {
  HFR_CHECK(!weights_.empty());
  const MatrixT<T>& w = weights_[0];
  const MatrixT<T>& b = biases_[0];
  HFR_CHECK_LE(split, w.rows());
  if constexpr (std::is_same_v<T, double>) {
    for (size_t j = 0; j < w.cols(); ++j) acc[j] = b(0, j);
    for (size_t i = 0; i < split; ++i) {
      const T xi = x[i];
      if (xi == T(0)) continue;
      const T* wrow = w.Row(i);
      for (size_t j = 0; j < w.cols(); ++j) acc[j] += xi * wrow[j];
    }
  } else {
    // Float prefixes must match what GemvBatchResume would have produced
    // for the same leading inputs, so run the fp32 kernel itself (batch 1,
    // resuming from the bias) rather than a hand-written loop.
    GemvBatchResume(x, size_t{1}, split, split, w.data().data(),
                    b.data().data(), w.cols(), acc);
  }
}

template <typename T>
void FeedForwardNetT<T>::ForwardBatchFromPrefix(const T* prefix,
                                                const T* suffix, size_t batch,
                                                size_t suffix_dim,
                                                size_t suffix_stride,
                                                T* logits) const {
  HFR_CHECK(!weights_.empty());
  if (batch == 0) return;
  const MatrixT<T>& w0 = weights_[0];
  HFR_CHECK_LE(suffix_dim, w0.rows());
  const size_t split = w0.rows() - suffix_dim;
  thread_local AlignedVector<T> cur;
  thread_local AlignedVector<T> next;
  next.resize(batch * w0.cols());
  GemvBatchResume(suffix, batch, suffix_stride, suffix_dim,
                  w0.data().data() + split * w0.cols(), prefix, w0.cols(),
                  next.data());
  if (weights_.size() > 1) {
    for (T& v : next) v = Relu(v);
  }
  std::swap(cur, next);
  const T* src = cur.data();
  for (size_t l = 1; l < weights_.size(); ++l) {
    const MatrixT<T>& w = weights_[l];
    const MatrixT<T>& b = biases_[l];
    next.resize(batch * w.cols());
    GemvBatchBiased(src, batch, w.rows(), w.data().data(), b.data().data(),
                    w.cols(), next.data());
    const bool is_output = (l + 1 == weights_.size());
    if (!is_output) {
      for (T& v : next) v = Relu(v);
    }
    std::swap(cur, next);
    src = cur.data();
  }
  std::copy(cur.begin(), cur.end(), logits);
}

template <typename T>
void FeedForwardNetT<T>::Backward(const Cache& cache, T dlogit,
                                  FeedForwardNetT* grads, T* dx) const {
  HFR_CHECK(grads != nullptr);
  HFR_CHECK_EQ(grads->weights_.size(), weights_.size());
  const size_t L = weights_.size();
  // delta = dL/d(pre-activation of layer l), starting at the output logit.
  // Like Forward, this is the scalar reference path the batched kernels
  // are pinned against; thread-local ping-pong buffers as above.
  thread_local AlignedVector<T> delta;
  thread_local AlignedVector<T> prev_delta;
  delta.assign(1, dlogit);
  for (size_t l = L; l-- > 0;) {
    const AlignedVector<T>& layer_in =
        (l == 0) ? cache.input : cache.post[l - 1];
    const MatrixT<T>& w = weights_[l];
    MatrixT<T>& gw = grads->weights_[l];
    MatrixT<T>& gb = grads->biases_[l];
    // Bias and weight grads: gb += delta; gw += layer_in ⊗ delta.
    for (size_t j = 0; j < w.cols(); ++j) gb(0, j) += delta[j];
    for (size_t i = 0; i < w.rows(); ++i) {
      T xi = layer_in[i];
      if (xi == T(0)) continue;
      T* grow = gw.Row(i);
      for (size_t j = 0; j < w.cols(); ++j) grow[j] += xi * delta[j];
    }
    // Propagate to the previous layer (or the input).
    prev_delta.assign(w.rows(), T(0));
    for (size_t i = 0; i < w.rows(); ++i) {
      const T* wrow = w.Row(i);
      T acc = T(0);
      for (size_t j = 0; j < w.cols(); ++j) acc += wrow[j] * delta[j];
      prev_delta[i] = acc;
    }
    if (l > 0) {
      // Through the ReLU of layer l-1.
      for (size_t i = 0; i < prev_delta.size(); ++i) {
        prev_delta[i] *= ReluGrad(cache.pre[l - 1][i]);
      }
      std::swap(delta, prev_delta);
    } else if (dx) {
      for (size_t i = 0; i < input_dim_; ++i) dx[i] = prev_delta[i];
    }
  }
}

template <typename T>
void FeedForwardNetT<T>::BackwardBatch(const BatchCache& cache,
                                       const T* dlogits,
                                       FeedForwardNetT* grads, T* dx) const {
  HFR_CHECK(grads != nullptr);
  HFR_CHECK_EQ(grads->weights_.size(), weights_.size());
  const size_t batch = cache.batch;
  if (batch == 0) return;
  const size_t L = weights_.size();
  thread_local AlignedVector<T> delta;
  thread_local AlignedVector<T> prev_delta;
  delta.assign(dlogits, dlogits + batch);  // output layer: batch x 1
  for (size_t l = L; l-- > 0;) {
    const AlignedVector<T>& layer_in =
        (l == 0) ? cache.input : cache.post[l - 1];
    const MatrixT<T>& w = weights_[l];
    AccumulateOuterBatch(layer_in.data(), delta.data(), batch, w.rows(),
                         w.cols(), grads->weights_[l].data().data(),
                         grads->biases_[l].data().data());
    prev_delta.resize(batch * w.rows());
    GemvBatchTransposed(delta.data(), batch, w.cols(), w.data().data(),
                        w.rows(), prev_delta.data());
    if (l > 0) {
      const AlignedVector<T>& pre = cache.pre[l - 1];
      for (size_t t = 0; t < prev_delta.size(); ++t) {
        prev_delta[t] *= ReluGrad(pre[t]);
      }
      std::swap(delta, prev_delta);
    } else if (dx) {
      std::copy(prev_delta.begin(), prev_delta.end(), dx);
    }
  }
}

template <typename T>
void FeedForwardNetT<T>::SetZero() {
  for (auto& w : weights_) w.SetZero();
  for (auto& b : biases_) b.SetZero();
}

template <typename T>
void FeedForwardNetT<T>::AddScaled(const FeedForwardNetT& other, T scale) {
  HFR_CHECK_EQ(weights_.size(), other.weights_.size());
  for (size_t l = 0; l < weights_.size(); ++l) {
    weights_[l].AddScaled(other.weights_[l], scale);
    biases_[l].AddScaled(other.biases_[l], scale);
  }
}

template <typename T>
size_t FeedForwardNetT<T>::ParamCount() const {
  size_t n = 0;
  for (const auto& w : weights_) n += w.size();
  for (const auto& b : biases_) n += b.size();
  return n;
}

template <typename T>
T FeedForwardNetT<T>::MaxAbs() const {
  T m = T(0);
  for (const auto& w : weights_) m = std::max(m, w.MaxAbs());
  for (const auto& b : biases_) m = std::max(m, b.MaxAbs());
  return m;
}

template <typename T>
FeedForwardNetT<T> FeedForwardNetT<T>::ZerosLike(const FeedForwardNetT& other) {
  FeedForwardNetT out = other;
  out.SetZero();
  return out;
}

template <typename T>
bool FeedForwardNetT<T>::SameShape(const FeedForwardNetT& other) const {
  if (input_dim_ != other.input_dim_ ||
      weights_.size() != other.weights_.size()) {
    return false;
  }
  for (size_t l = 0; l < weights_.size(); ++l) {
    if (!weights_[l].SameShape(other.weights_[l])) return false;
  }
  return true;
}

template class FeedForwardNetT<double>;
template class FeedForwardNetT<float>;

template <typename T>
void FfnAdamT<T>::Step(FeedForwardNetT<T>* net,
                       const FeedForwardNetT<T>& grads) {
  const size_t layers = net->num_layers();
  if (weight_state_.empty()) {
    weight_state_.assign(layers, AdamT<T>(options_));
    bias_state_.assign(layers, AdamT<T>(options_));
  }
  HFR_CHECK_EQ(weight_state_.size(), layers);
  for (size_t l = 0; l < layers; ++l) {
    weight_state_[l].Step(&net->weight(l), grads.weight(l));
    bias_state_[l].Step(&net->bias(l), grads.bias(l));
  }
}

template <typename T>
void FfnAdamT<T>::Reset() {
  weight_state_.clear();
  bias_state_.clear();
}

template <typename T>
long long FfnAdamT<T>::skipped_steps() const {
  long long total = 0;
  for (const AdamT<T>& a : weight_state_) total += a.skipped_steps();
  for (const AdamT<T>& a : bias_state_) total += a.skipped_steps();
  return total;
}

template class FfnAdamT<double>;
template class FfnAdamT<float>;

}  // namespace hetefedrec
