#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace hetefedrec {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // File/line kept only for debug level to keep routine logs compact.
  if (level == LogLevel::kDebug) stream_ << file << ":" << line << " ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level_), stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "[FATAL] %s:%d %s\n", file_, line_,
               stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace hetefedrec
