// Minimal leveled logging to stderr plus CHECK macros.
//
// Experiments are long-running batch jobs; logging is line-oriented with an
// ISO-8601 UTC timestamp, level and thread-id prefix so output can be
// grepped and interleaved lines attributed:
//   [2026-08-07T12:00:00.123Z INFO t0] message
// Thread ids are compact per-process ordinals (t0 = first logging thread,
// usually main), not OS tids. CHECK macros abort on programmer errors
// (contract violations), while recoverable conditions use Status.
#ifndef HETEFEDREC_UTIL_LOGGING_H_
#define HETEFEDREC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace hetefedrec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. The initial
/// value comes from the HETEFEDREC_LOG_LEVEL environment variable when set
/// (any ParseLogLevel spelling; bad values warn and keep INFO).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug"/"info"/"warning"/"warn"/"error" (case-insensitive) or a
/// numeric level 0-3 into *out. Returns false (leaving *out untouched) on
/// anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define HFR_LOG(level)                                                    \
  ::hetefedrec::internal::LogMessage(::hetefedrec::LogLevel::k##level,    \
                                     __FILE__, __LINE__)

#define HFR_CHECK(cond)                                                   \
  if (!(cond))                                                            \
  ::hetefedrec::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define HFR_CHECK_EQ(a, b) HFR_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define HFR_CHECK_NE(a, b) HFR_CHECK((a) != (b))
#define HFR_CHECK_LT(a, b) HFR_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define HFR_CHECK_LE(a, b) HFR_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define HFR_CHECK_GT(a, b) HFR_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define HFR_CHECK_GE(a, b) HFR_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_LOGGING_H_
