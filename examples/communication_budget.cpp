// Communication budgeting: how much traffic each scheme costs per round
// and per trained model quality (Table III's practical consequence).
//
// Shows the CommStats API: every public-parameter download/upload in the
// simulation is metered, so you can compare schemes by "NDCG per scalar
// transmitted".
#include <cstdio>

#include "src/core/trainer.h"
#include "src/util/table_printer.h"

int main() {
  using namespace hetefedrec;

  ExperimentConfig config;
  config.dataset = "ml";
  config.data_scale = 0.05;
  config.global_epochs = 8;
  // Round size scales with the population (the paper's 256 of 6,040);
  // keeping 256 at example scale would mean ~1 aggregation round per epoch.
  config.clients_per_round = 64;
  config.eval_user_sample = 250;

  auto runner = ExperimentRunner::Create(config);
  if (!runner.ok()) {
    std::fprintf(stderr, "%s\n", runner.status().ToString().c_str());
    return 1;
  }

  TablePrinter table(
      "Communication vs quality",
      {"Method", "NDCG", "Total scalars moved", "Avg up Us", "Avg up Um",
       "Avg up Ul", "NDCG per Mscalar"});
  for (Method m : {Method::kAllSmall, Method::kAllLarge, Method::kStandalone,
                   Method::kHeteFedRec}) {
    ExperimentResult r = (*runner)->Run(m);
    double mscalars =
        static_cast<double>(r.comm.TotalTransmitted()) / 1e6;
    table.AddRow(
        {MethodName(m), TablePrinter::Num(r.final_eval.overall.ndcg),
         TablePrinter::Count(static_cast<long long>(r.comm.TotalTransmitted())),
         TablePrinter::Num(r.comm.AvgUpload(Group::kSmall), 0),
         TablePrinter::Num(r.comm.AvgUpload(Group::kMedium), 0),
         TablePrinter::Num(r.comm.AvgUpload(Group::kLarge), 0),
         mscalars > 0
             ? TablePrinter::Num(r.final_eval.overall.ndcg / mscalars, 5)
             : "inf"});
  }
  table.Print();
  std::printf(
      "\nNote: HeteFedRec moves less traffic than All Large (small clients "
      "ship small tables) while matching or beating its quality; Standalone "
      "moves nothing but collapses in quality.\n");
  return 0;
}
