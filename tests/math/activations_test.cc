#include "src/math/activations.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetefedrec {
namespace {

TEST(ActivationsTest, SigmoidKnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  EXPECT_NEAR(Sigmoid(-2.0), 1.0 - Sigmoid(2.0), 1e-12);
}

TEST(ActivationsTest, SigmoidExtremeStability) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_FALSE(std::isnan(Sigmoid(710.0)));
  EXPECT_FALSE(std::isnan(Sigmoid(-710.0)));
}

TEST(ActivationsTest, Relu) {
  EXPECT_EQ(Relu(3.0), 3.0);
  EXPECT_EQ(Relu(-3.0), 0.0);
  EXPECT_EQ(Relu(0.0), 0.0);
  EXPECT_EQ(ReluGrad(3.0), 1.0);
  EXPECT_EQ(ReluGrad(-3.0), 0.0);
}

TEST(ActivationsTest, BceMatchesNaiveFormula) {
  for (double z : {-3.0, -0.5, 0.0, 0.7, 4.0}) {
    for (double y : {0.0, 1.0}) {
      double p = Sigmoid(z);
      double naive = -(y * std::log(p) + (1 - y) * std::log(1 - p));
      EXPECT_NEAR(BceWithLogits(z, y), naive, 1e-9) << "z=" << z << " y=" << y;
    }
  }
}

TEST(ActivationsTest, BceStableAtExtremeLogits) {
  EXPECT_FALSE(std::isnan(BceWithLogits(800.0, 0.0)));
  EXPECT_FALSE(std::isinf(BceWithLogits(-800.0, 0.0)));
  EXPECT_NEAR(BceWithLogits(800.0, 1.0), 0.0, 1e-9);
  EXPECT_NEAR(BceWithLogits(-800.0, 0.0), 0.0, 1e-9);
}

TEST(ActivationsTest, BceGradientFiniteDifference) {
  const double h = 1e-6;
  for (double z : {-2.0, 0.0, 1.3}) {
    for (double y : {0.0, 1.0}) {
      double numeric =
          (BceWithLogits(z + h, y) - BceWithLogits(z - h, y)) / (2 * h);
      EXPECT_NEAR(BceWithLogitsGrad(z, y), numeric, 1e-6);
    }
  }
}

TEST(ActivationsTest, BceGradSignMakesSense) {
  // Predicting high when label is 0 -> positive gradient (push logit down).
  EXPECT_GT(BceWithLogitsGrad(3.0, 0.0), 0.0);
  EXPECT_LT(BceWithLogitsGrad(-3.0, 1.0), 0.0);
}

}  // namespace
}  // namespace hetefedrec
