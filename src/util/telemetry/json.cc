#include "src/util/telemetry/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace hetefedrec {

void AppendJsonString(std::string* out, const std::string& v) {
  out->push_back('"');
  for (char c : v) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          *out += esc;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[40];
  // 2^53: doubles at or beyond this are not guaranteed to hold integers
  // exactly, so fall through to the %.17g form.
  constexpr double kExactIntLimit = 9007199254740992.0;
  if (v == std::floor(v) && std::fabs(v) < kExactIntLimit) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  *out += buf;
}

void JsonObj::Key(const char* key) {
  if (!first_) buf_ += ',';
  first_ = false;
  AppendJsonString(&buf_, key);
  buf_ += ':';
}

JsonObj& JsonObj::U64(const char* key, uint64_t v) {
  Key(key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  buf_ += buf;
  return *this;
}

JsonObj& JsonObj::I64(const char* key, int64_t v) {
  Key(key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  buf_ += buf;
  return *this;
}

JsonObj& JsonObj::Num(const char* key, double v) {
  Key(key);
  AppendJsonNumber(&buf_, v);
  return *this;
}

JsonObj& JsonObj::Bool(const char* key, bool v) {
  Key(key);
  buf_ += v ? "true" : "false";
  return *this;
}

JsonObj& JsonObj::Str(const char* key, const std::string& v) {
  Key(key);
  AppendJsonString(&buf_, v);
  return *this;
}

JsonObj& JsonObj::Raw(const char* key, const std::string& json) {
  Key(key);
  buf_ += json;
  return *this;
}

}  // namespace hetefedrec
