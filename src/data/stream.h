// Streaming power-law client generator (million-user workloads).
//
// The calibrated synthetic generators (src/data/synthetic.h) materialize
// the whole interaction log before training starts — fine at paper scale,
// impossible at the ROADMAP's million-user scale where the log would dwarf
// RAM. `ClientStream` removes the materialization: each client's
// interaction set is a *pure function of (seed, user id)*, generated on
// demand in O(items-per-user · log num_items) time and O(1) extra memory.
// The only precomputed state is the item-popularity CDF — O(num_items)
// doubles, independent of the user count — so streaming 1M+ clients
// through the round loop holds peak RSS at catalogue scale, never log
// scale (asserted by tests/data/stream_test.cc).
//
// Generative model (the two knobs the scale-out bench cares about):
//   - Item popularity is Zipf: P(item rank r) ∝ 1/(r+1)^popularity_exponent.
//     Hot rows concentrate in the low item ids, which is exactly the skew
//     an item-range-sharded server must survive (bench_sharding reports
//     per-shard upload balance under it).
//   - Per-user interaction counts are Pareto with tail index size_exponent:
//     count = min_items · U^(-1/size_exponent), clamped to max_items — the
//     heavy-tailed client-data skew that motivates model heterogeneity.
//
// Determinism: two passes over the same (seed, user id) return
// byte-identical clients, in any order, from any thread (`Get` is const
// and forks a private RNG stream per user).
#ifndef HETEFEDREC_DATA_STREAM_H_
#define HETEFEDREC_DATA_STREAM_H_

#include <cstdint>
#include <vector>

#include "src/data/types.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief Parameters of the streaming generator.
struct StreamConfig {
  size_t num_users = 1'000'000;
  size_t num_items = 100'000;
  /// Zipf exponent of item popularity (higher = hotter head).
  double popularity_exponent = 1.05;
  /// Pareto tail index of per-user interaction counts (lower = heavier
  /// tail). Must be > 0.
  double size_exponent = 1.6;
  size_t min_items_per_user = 4;
  size_t max_items_per_user = 256;
  uint64_t seed = 1;
};

/// \brief One generated client: its distinct interacted items, ascending.
struct StreamClient {
  UserId user = 0;
  /// Distinct item rows, strictly ascending — directly usable as a
  /// SparseRowUpdate row set or a delta-sync subscription.
  std::vector<uint32_t> items;
};

/// \brief On-demand client generator; see file header.
class ClientStream {
 public:
  explicit ClientStream(const StreamConfig& config);

  size_t num_users() const { return config_.num_users; }
  size_t num_items() const { return config_.num_items; }
  const StreamConfig& config() const { return config_; }

  /// Generates client `u`. Pure in (config().seed, u): same seed, same
  /// client, byte for byte — across passes, orders and threads.
  StreamClient Get(UserId u) const;

  /// Draws one item id from the popularity distribution using `rng`
  /// (exposed for tests that fit the exponent).
  uint32_t SampleItem(Rng* rng) const;

  /// The Pareto interaction count client `u` draws (before item dedup);
  /// exposed for tests that fit the tail index.
  size_t SampleCount(UserId u) const;

 private:
  StreamConfig config_;
  Rng root_;
  /// Normalized popularity CDF over items, cdf_[r] = P(rank <= r). The only
  /// O(num_items) state; shared read-only by all Get calls.
  std::vector<double> pop_cdf_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_DATA_STREAM_H_
